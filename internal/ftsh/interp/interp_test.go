package interp_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ftsh/interp"
	"repro/internal/proc"
	"repro/internal/sim"
)

// world is a little simulated universe for interpreter tests.
type world struct {
	eng    *sim.Engine
	runner *proc.MapRunner
	fs     *interp.MemFS
	out    bytes.Buffer
}

func newWorld(seed int64) *world {
	return &world{eng: sim.New(seed), runner: proc.NewMapRunner(), fs: interp.NewMemFS()}
}

// run executes src in one simulated process and returns the script error.
func (w *world) run(t *testing.T, src string, tweak func(cfg *interp.Config)) error {
	t.Helper()
	var scriptErr error
	w.eng.Spawn("script", func(p *sim.Proc) {
		cfg := interp.Config{
			Runner:  w.runner,
			Runtime: p,
			Stdout:  &w.out,
			Stderr:  &w.out,
			FS:      w.fs,
		}
		if tweak != nil {
			tweak(&cfg)
		}
		in := interp.New(cfg)
		scriptErr = in.RunSource(w.eng.Context(), src)
	})
	if err := w.eng.Run(); err != nil {
		t.Fatalf("engine: %v", err)
	}
	return scriptErr
}

func TestGroupStopsAtFirstFailure(t *testing.T) {
	w := newWorld(1)
	var trace []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		w.runner.Register(name, func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
			trace = append(trace, name)
			if name == "b" {
				return core.ErrFailure
			}
			return nil
		})
	}
	err := w.run(t, "a\nb\nc\n", nil)
	if err == nil {
		t.Fatal("want failure")
	}
	if len(trace) != 2 || trace[1] != "b" {
		t.Fatalf("trace = %v: c must not run after b fails", trace)
	}
}

func TestTryRetriesWithVirtualBackoff(t *testing.T) {
	w := newWorld(1)
	calls := 0
	w.runner.Register("flaky", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		calls++
		if calls < 3 {
			return core.ErrFailure
		}
		return nil
	})
	err := w.run(t, "try for 1 hour\n  flaky\nend\n", nil)
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
	// Two backoffs: >= 1s+2s, < 2*(1s+2s).
	if e := w.eng.Elapsed(); e < 3*time.Second || e >= 6*time.Second {
		t.Fatalf("elapsed = %v", e)
	}
}

func TestTryTimesExhaustsThenCatchRuns(t *testing.T) {
	w := newWorld(1)
	gets, cleanups := 0, 0
	w.runner.Register("wget", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		gets++
		return core.ErrFailure
	})
	w.runner.Register("cleanup", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		cleanups++
		return nil
	})
	src := `try 5 times
  wget http://server/file.tar.gz
catch
  cleanup file.tar.gz
  failure
end
`
	err := w.run(t, src, nil)
	if err == nil {
		t.Fatal("catch re-raised failure; script must fail")
	}
	if gets != 5 || cleanups != 1 {
		t.Fatalf("gets=%d cleanups=%d", gets, cleanups)
	}
}

func TestTryCatchSwallowsWhenCatchSucceeds(t *testing.T) {
	w := newWorld(1)
	w.runner.Register("boom", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		return core.ErrFailure
	})
	err := w.run(t, "try 2 times\n  boom\ncatch\n  echo recovered\nend\n", nil)
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(w.out.String(), "recovered") {
		t.Fatalf("out = %q", w.out.String())
	}
}

func TestTryTimeoutKillsHungCommand(t *testing.T) {
	w := newWorld(1)
	w.runner.Register("hang", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		return rt.Sleep(ctx, 24*time.Hour)
	})
	err := w.run(t, "try for 10 seconds\n  hang\nend\n", nil)
	if err == nil {
		t.Fatal("want exhaustion")
	}
	if e := w.eng.Elapsed(); e != 10*time.Second {
		t.Fatalf("elapsed = %v, want exactly 10s (session killed at budget)", e)
	}
}

func TestForanyPicksWinnerAndVarPersists(t *testing.T) {
	w := newWorld(1)
	w.runner.Register("wget", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		if strings.Contains(cmd.Args[0], "yyy") {
			return nil
		}
		return core.ErrFailure
	})
	src := `forany server in xxx yyy zzz
  wget http://${server}/file.tar.gz
end
echo got file from ${server}
`
	err := w.run(t, src, nil)
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(w.out.String(), "got file from yyy") {
		t.Fatalf("out = %q", w.out.String())
	}
}

func TestForanyAllFail(t *testing.T) {
	w := newWorld(1)
	w.runner.Register("wget", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		return core.ErrFailure
	})
	err := w.run(t, "forany s in a b c\n  wget ${s}\nend\n", nil)
	var all *core.AllFailedError
	if !errors.As(err, &all) {
		t.Fatalf("err = %v", err)
	}
}

func TestForallRunsInParallelAndAbortsOnFailure(t *testing.T) {
	w := newWorld(1)
	w.runner.Register("fetch", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		switch cmd.Args[0] {
		case "bad":
			if err := rt.Sleep(ctx, time.Second); err != nil {
				return err
			}
			return core.ErrFailure
		default:
			return rt.Sleep(ctx, time.Hour)
		}
	})
	err := w.run(t, "forall f in slow bad other\n  fetch ${f}\nend\n", nil)
	if err == nil {
		t.Fatal("want failure")
	}
	if e := w.eng.Elapsed(); e != time.Second {
		t.Fatalf("elapsed = %v, want 1s: failure must cancel hour-long branches", e)
	}
}

func TestForallParallelTiming(t *testing.T) {
	w := newWorld(1)
	w.runner.Register("fetch", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		return rt.Sleep(ctx, 10*time.Second)
	})
	err := w.run(t, "forall f in a b c d e\n  fetch ${f}\nend\n", nil)
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if e := w.eng.Elapsed(); e != 10*time.Second {
		t.Fatalf("elapsed = %v, want 10s (parallel)", e)
	}
}

func TestForallBranchVarsAreIsolated(t *testing.T) {
	w := newWorld(1)
	src := `x=outer
forall f in a b
  x=${f}
end
echo x=${x}
`
	err := w.run(t, src, nil)
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(w.out.String(), "x=outer") {
		t.Fatalf("out = %q: branch writes must not leak", w.out.String())
	}
}

func TestWhileLoopWithExprCounter(t *testing.T) {
	w := newWorld(1)
	src := `n=0
while ${n} .lt. 5
  expr ${n} + 1 -> n
end
echo n=${n}
`
	if err := w.run(t, src, nil); err != nil {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(w.out.String(), "n=5") {
		t.Fatalf("out = %q", w.out.String())
	}
}

func TestIfElifElse(t *testing.T) {
	for _, c := range []struct{ x, want string }{
		{"1", "one"}, {"2", "two"}, {"9", "many"},
	} {
		w := newWorld(1)
		src := fmt.Sprintf(`x=%s
if ${x} .eq. 1
  echo one
elif ${x} .eq. 2
  echo two
else
  echo many
end
`, c.x)
		if err := w.run(t, src, nil); err != nil {
			t.Fatalf("err = %v", err)
		}
		if !strings.Contains(w.out.String(), c.want) {
			t.Fatalf("x=%s out=%q want %q", c.x, w.out.String(), c.want)
		}
	}
}

func TestStringComparison(t *testing.T) {
	w := newWorld(1)
	src := `host=alpha
if ${host} .eql. alpha
  echo match
end
if ${host} .neql. beta
  echo nomatch
end
`
	if err := w.run(t, src, nil); err != nil {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(w.out.String(), "match") || !strings.Contains(w.out.String(), "nomatch") {
		t.Fatalf("out = %q", w.out.String())
	}
}

func TestNumericComparisonOnGarbageFails(t *testing.T) {
	w := newWorld(1)
	err := w.run(t, "if pear .lt. 3\n  echo no\nend\n", nil)
	if err == nil {
		t.Fatal("want failure for non-numeric operand")
	}
}

func TestRedirectToVariableStripsNewline(t *testing.T) {
	w := newWorld(1)
	w.runner.Register("freefds", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		fmt.Fprintln(cmd.Stdout, "4242")
		return nil
	})
	src := `freefds -> n
if ${n} .eq. 4242
  echo ok
end
`
	if err := w.run(t, src, nil); err != nil {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(w.out.String(), "ok") {
		t.Fatalf("out = %q", w.out.String())
	}
}

func TestVariableRedirectionTransaction(t *testing.T) {
	// The paper's I/O-transaction idiom: capture into a variable, then
	// emit with cat -< only after success.
	w := newWorld(1)
	calls := 0
	w.runner.Register("run-simulation", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		calls++
		fmt.Fprintf(cmd.Stdout, "partial %d\n", calls)
		if calls < 3 {
			return core.ErrFailure
		}
		fmt.Fprintln(cmd.Stdout, "final answer")
		return nil
	})
	src := `try 5 times
  run-simulation ->& tmp
end
cat -< tmp
`
	if err := w.run(t, src, nil); err != nil {
		t.Fatalf("err = %v", err)
	}
	out := w.out.String()
	if !strings.Contains(out, "final answer") {
		t.Fatalf("out = %q", out)
	}
	if strings.Contains(out, "partial 1") || strings.Contains(out, "partial 2") {
		t.Fatalf("out = %q: earlier attempts' partial output leaked", out)
	}
}

func TestAppendToVariable(t *testing.T) {
	w := newWorld(1)
	src := `echo one ->> log
echo two ->> log
cat -< log
`
	if err := w.run(t, src, nil); err != nil {
		t.Fatalf("err = %v", err)
	}
	if got := w.out.String(); !strings.Contains(got, "one\ntwo") {
		t.Fatalf("out = %q", got)
	}
}

func TestFileRedirection(t *testing.T) {
	w := newWorld(1)
	src := `echo hello > greeting.txt
echo again >> greeting.txt
cat greeting.txt
`
	if err := w.run(t, src, nil); err != nil {
		t.Fatalf("err = %v", err)
	}
	data, ok := w.fs.ReadFile("greeting.txt")
	if !ok || string(data) != "hello\nagain\n" {
		t.Fatalf("file = %q ok=%v", data, ok)
	}
	if !strings.Contains(w.out.String(), "hello\nagain") {
		t.Fatalf("out = %q", w.out.String())
	}
}

func TestStdinFromFile(t *testing.T) {
	w := newWorld(1)
	w.fs.WriteFile("in.txt", []byte("payload"))
	if err := w.run(t, "cat < in.txt\n", nil); err != nil {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(w.out.String(), "payload") {
		t.Fatalf("out = %q", w.out.String())
	}
}

func TestFunctionPositionalArgs(t *testing.T) {
	w := newWorld(1)
	src := `function greet
  echo hi ${1} and ${2} of ${#}
end
greet alice bob
`
	if err := w.run(t, src, nil); err != nil {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(w.out.String(), "hi alice and bob of 2") {
		t.Fatalf("out = %q", w.out.String())
	}
}

func TestFunctionFailurePropagates(t *testing.T) {
	w := newWorld(1)
	src := `function die
  failure
end
die
echo unreachable
`
	err := w.run(t, src, nil)
	if err == nil {
		t.Fatal("want failure")
	}
	if strings.Contains(w.out.String(), "unreachable") {
		t.Fatal("statements after failing call ran")
	}
}

func TestSuccessUnwindsFunction(t *testing.T) {
	w := newWorld(1)
	src := `function maybe
  success
  echo unreachable
end
maybe
echo after
`
	if err := w.run(t, src, nil); err != nil {
		t.Fatalf("err = %v", err)
	}
	out := w.out.String()
	if strings.Contains(out, "unreachable") || !strings.Contains(out, "after") {
		t.Fatalf("out = %q", out)
	}
}

func TestSuccessInsideTryUnwindsScript(t *testing.T) {
	w := newWorld(1)
	src := `try 3 times
  success
end
echo unreachable
`
	if err := w.run(t, src, nil); err != nil {
		t.Fatalf("err = %v", err)
	}
	if strings.Contains(w.out.String(), "unreachable") {
		t.Fatal("success did not unwind past try")
	}
}

func TestCommandNotFound(t *testing.T) {
	w := newWorld(1)
	err := w.run(t, "no-such-program\n", nil)
	if err == nil || !strings.Contains(err.Error(), "command not found") {
		t.Fatalf("err = %v", err)
	}
}

func TestSleepBuiltinAdvancesVirtualClock(t *testing.T) {
	w := newWorld(1)
	if err := w.run(t, "sleep 90\n", nil); err != nil {
		t.Fatalf("err = %v", err)
	}
	if w.eng.Elapsed() != 90*time.Second {
		t.Fatalf("elapsed = %v", w.eng.Elapsed())
	}
}

func TestListExpansionSplitsVariables(t *testing.T) {
	w := newWorld(1)
	hits := map[string]bool{}
	w.runner.Register("visit", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		hits[cmd.Args[0]] = true
		return nil
	})
	src := `servers=xxx yyy zzz
for s in ${servers}
  visit ${s}
end
`
	if err := w.run(t, src, nil); err != nil {
		t.Fatalf("err = %v", err)
	}
	if len(hits) != 3 {
		t.Fatalf("hits = %v", hits)
	}
}

func TestQuotedVariableDoesNotSplit(t *testing.T) {
	w := newWorld(1)
	var got []string
	w.runner.Register("take", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		got = cmd.Args
		return nil
	})
	src := `v=a b c
take "${v}"
`
	if err := w.run(t, src, nil); err != nil {
		t.Fatalf("err = %v", err)
	}
	if len(got) != 1 || got[0] != "a b c" {
		t.Fatalf("args = %v", got)
	}
}

func TestPaperEthernetSubmitterScript(t *testing.T) {
	// The §5 Ethernet submitter, verbatim shape: defer while free FDs
	// are below threshold, then submit.
	w := newWorld(1)
	free := 500
	submitted := 0
	w.runner.Register("freefds", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		fmt.Fprintln(cmd.Stdout, free)
		return nil
	})
	w.runner.Register("condor_submit", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		submitted++
		return nil
	})
	w.eng.Schedule(30*time.Second, func() { free = 5000 })
	src := `try for 5 minutes
  freefds -> n
  if ${n} .lt. 1000
    failure
  else
    condor_submit submit.job
  end
end
`
	if err := w.run(t, src, nil); err != nil {
		t.Fatalf("err = %v", err)
	}
	if submitted != 1 {
		t.Fatalf("submitted = %d", submitted)
	}
	if w.eng.Elapsed() < 30*time.Second {
		t.Fatalf("elapsed = %v: must have backed off until FDs freed", w.eng.Elapsed())
	}
}

func TestPaperBlackHoleReaderScript(t *testing.T) {
	// §5 scenario three: probe the flag file first; the black hole makes
	// the probe hang, so the Ethernet reader defers to another server.
	w := newWorld(3)
	w.runner.Register("wget", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		url := cmd.Args[0]
		switch {
		case strings.Contains(url, "blackhole"):
			return rt.Sleep(ctx, 365*24*time.Hour) // never returns voluntarily
		case strings.HasSuffix(url, "/flag"):
			return rt.Sleep(ctx, 100*time.Millisecond)
		default:
			return rt.Sleep(ctx, 10*time.Second)
		}
	})
	src := `try for 900 seconds
  forany host in blackhole good1 good2
    try for 5 seconds
      wget http://${host}/flag
    end
    try for 60 seconds
      wget http://${host}/data
    end
  end
end
echo fetched from ${host}
`
	if err := w.run(t, src, nil); err != nil {
		t.Fatalf("err = %v", err)
	}
	out := w.out.String()
	if !strings.Contains(out, "fetched from good") {
		t.Fatalf("out = %q", out)
	}
	// Probe costs at most 5s on the black hole, then ~10s transfer.
	if e := w.eng.Elapsed(); e > 20*time.Second {
		t.Fatalf("elapsed = %v: probe should have skipped the black hole quickly", e)
	}
}

func TestInterpVarAPI(t *testing.T) {
	w := newWorld(1)
	var inVar string
	w.eng.Spawn("script", func(p *sim.Proc) {
		in := interp.New(interp.Config{Runner: w.runner, Runtime: p, Stdout: io.Discard})
		in.SetVar("target", "mars")
		if err := in.RunSource(w.eng.Context(), "dest=${target}\n"); err != nil {
			t.Errorf("err = %v", err)
		}
		inVar = in.Var("dest")
	})
	if err := w.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if inVar != "mars" {
		t.Fatalf("dest = %q", inVar)
	}
}

func TestLogTraceWritten(t *testing.T) {
	w := newWorld(1)
	var log bytes.Buffer
	w.runner.Register("boom", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		return core.ErrFailure
	})
	_ = w.run(t, "try 2 times\n  boom\nend\n", func(cfg *interp.Config) { cfg.Log = &log })
	s := log.String()
	if !strings.Contains(s, "exec boom") || !strings.Contains(s, "failed") {
		t.Fatalf("log = %q", s)
	}
}

func TestMaxForallThrottlesBranches(t *testing.T) {
	w := newWorld(1)
	w.runner.Register("work", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		return rt.Sleep(ctx, 10*time.Second)
	})
	err := w.run(t, "forall f in a b c d\n  work ${f}\nend\n", func(cfg *interp.Config) {
		cfg.MaxForall = 2
	})
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	// 4 branches, 2 at a time, 10s each => 20s.
	if e := w.eng.Elapsed(); e != 20*time.Second {
		t.Fatalf("elapsed = %v, want 20s", e)
	}
}

func TestStatsPostMortem(t *testing.T) {
	w := newWorld(1)
	calls := 0
	w.runner.Register("flaky", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		calls++
		if calls < 3 {
			return core.ErrFailure
		}
		return nil
	})
	w.runner.Register("wget", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		if strings.Contains(cmd.Args[0], "yyy") {
			return nil
		}
		return core.ErrFailure
	})
	src := `try for 1 hour
  flaky
end
forany s in xxx yyy zzz
  wget http://${s}/f
end
try 2 times
  wget http://xxx/f
end
`
	var st *interp.Stats
	w.eng.Spawn("script", func(p *sim.Proc) {
		in := interp.New(interp.Config{Runner: w.runner, Runtime: p, Stdout: io.Discard})
		_ = in.RunSource(w.eng.Context(), src)
		st = in.Stats()
	})
	if err := w.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if c := st.Commands["flaky"]; c == nil || c.Runs != 3 || c.Failures != 2 {
		t.Fatalf("flaky stats = %+v", c)
	}
	// wget: forany tried xxx (fail) then yyy (ok) = 2 runs 1 failure;
	// the final try ran xxx twice more (2 runs, 2 failures).
	if c := st.Commands["wget"]; c == nil || c.Runs != 4 || c.Failures != 3 {
		t.Fatalf("wget stats = %+v", c)
	}
	// First try: 3 attempts, 2 backoffs, no exhaustion.
	ts := st.Trys["1:1"]
	if ts == nil || ts.Trys != 1 || ts.Attempts != 3 || ts.Exhausted != 0 {
		t.Fatalf("try@1:1 = %+v", ts)
	}
	if ts.BackoffTotal < 3*time.Second || ts.BackoffTotal >= 6*time.Second {
		t.Fatalf("backoff total = %v, want [3s,6s)", ts.BackoffTotal)
	}
	// Second try (line 7): exhausted after 2 attempts, no catch.
	ts2 := st.Trys["7:1"]
	if ts2 == nil || ts2.Exhausted != 1 || ts2.Attempts != 2 || ts2.CaughtBy != 0 {
		t.Fatalf("try@7:1 = %+v", ts2)
	}
	// Forany winner recorded.
	wins := st.ForanyWins["4:1"]
	if wins == nil || wins["yyy"] != 1 {
		t.Fatalf("forany wins = %+v", wins)
	}
	// The report renders.
	var sb strings.Builder
	if _, err := st.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"flaky", "wget", "forany winners", "yyy:1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestExistsCondition(t *testing.T) {
	w := newWorld(1)
	w.fs.WriteFile("input.dat", []byte("x"))
	src := `if .exists. input.dat
  echo have input
end
if .exists. missing.dat
  echo ghost
else
  echo no ghost
end
`
	if err := w.run(t, src, nil); err != nil {
		t.Fatalf("err = %v", err)
	}
	out := w.out.String()
	if !strings.Contains(out, "have input") || !strings.Contains(out, "no ghost") || strings.Contains(out, "ghost\n") && !strings.Contains(out, "no ghost") {
		t.Fatalf("out = %q", out)
	}
}

func TestExistsPreflightIdiom(t *testing.T) {
	// §6's remedy for specification errors: test inputs before
	// submitting the job anywhere.
	w := newWorld(1)
	submitted := 0
	w.runner.Register("condor_submit", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		submitted++
		return nil
	})
	src := `if .exists. job.input
  condor_submit job
else
  failure
end
`
	if err := w.run(t, src, nil); err == nil {
		t.Fatal("missing input must fail the preflight")
	}
	if submitted != 0 {
		t.Fatal("job submitted despite failed preflight")
	}
	w.fs.WriteFile("job.input", []byte("data"))
	if err := w.run(t, src, nil); err != nil {
		t.Fatalf("err after providing input = %v", err)
	}
	if submitted != 1 {
		t.Fatalf("submitted = %d", submitted)
	}
}

func TestTryEveryFixedInterval(t *testing.T) {
	w := newWorld(1)
	calls := 0
	w.runner.Register("flaky", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		calls++
		if calls < 4 {
			return core.ErrFailure
		}
		return nil
	})
	if err := w.run(t, "try for 1 hour every 10 seconds\n  flaky\nend\n", nil); err != nil {
		t.Fatalf("err = %v", err)
	}
	// Three fixed 10 s delays, no randomization, no doubling.
	if e := w.eng.Elapsed(); e != 30*time.Second {
		t.Fatalf("elapsed = %v, want exactly 30s", e)
	}
}
