package interp_test

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/ftsh/interp"
	"repro/internal/proc"
	"repro/internal/sim"
)

// Example runs the paper's nested-try fragment (§4) against simulated
// commands in virtual time: the first fetch server hangs, the script
// fails over and completes well inside its budgets.
func Example() {
	e := sim.New(1)
	runner := proc.NewMapRunner()
	runner.Register("wget", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		if cmd.Args[0] == "http://xxx/file.tar.gz" {
			return rt.Sleep(ctx, 24*time.Hour) // black hole
		}
		return rt.Sleep(ctx, 10*time.Second)
	})
	runner.Register("gunzip", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		return rt.Sleep(ctx, time.Second)
	})
	runner.Register("tar", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		return rt.Sleep(ctx, 2*time.Second)
	})

	const script = `
try for 30 minutes
  forany server in xxx yyy zzz
    try for 1 minute
      wget http://${server}/file.tar.gz
    end
  end
  try for 1 minute or 3 times
    gunzip file.tar.gz
    tar xvf file.tar
  end
end
echo unpacked archive from ${server}
`
	e.Spawn("script", func(p *sim.Proc) {
		in := interp.New(interp.Config{Runner: runner, Runtime: p, Stdout: os.Stdout})
		if err := in.RunSource(e.Context(), script); err != nil {
			fmt.Println("script failed:", err)
		}
	})
	if err := e.Run(); err != nil {
		fmt.Println(err)
	}
	fmt.Printf("virtual time: %v\n", e.Elapsed())
	// Output:
	// unpacked archive from yyy
	// virtual time: 1m13s
}
