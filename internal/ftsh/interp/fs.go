package interp

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
)

// OSFS adapts the host filesystem to the FS interface, for the real
// shell.
type OSFS struct{}

// osRemove deletes a host file (separated for the rm builtin).
func osRemove(name string) error { return os.Remove(name) }

// OpenRead implements FS.
func (OSFS) OpenRead(name string) (io.ReadCloser, error) { return os.Open(name) }

// OpenWrite implements FS.
func (OSFS) OpenWrite(name string, appendTo bool) (io.WriteCloser, error) {
	flags := os.O_CREATE | os.O_WRONLY
	if appendTo {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	return os.OpenFile(name, flags, 0o644)
}

// MemFS is an in-memory FS for simulations and tests. It is safe for
// concurrent use by forall branches under the real runtime.
type MemFS struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string][]byte)} }

// OpenRead implements FS.
func (m *MemFS) OpenRead(name string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	data, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("open %s: file does not exist", name)
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// OpenWrite implements FS.
func (m *MemFS) OpenWrite(name string, appendTo bool) (io.WriteCloser, error) {
	return &memFile{fs: m, name: name, appendTo: appendTo}, nil
}

// ReadFile returns a file's contents.
func (m *MemFS) ReadFile(name string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[name]
	return b, ok
}

// WriteFile stores contents directly.
func (m *MemFS) WriteFile(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = append([]byte(nil), data...)
}

// Remove deletes a file; missing files are ignored (rm -f semantics).
func (m *MemFS) Remove(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.files, name)
}

// Names lists stored file names, sorted.
func (m *MemFS) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for k := range m.files {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// memFile buffers writes and commits on Close.
type memFile struct {
	fs       *MemFS
	name     string
	appendTo bool
	buf      bytes.Buffer
	closed   bool
}

// Write implements io.Writer.
func (f *memFile) Write(p []byte) (int, error) {
	if f.closed {
		return 0, fmt.Errorf("write %s: file closed", f.name)
	}
	return f.buf.Write(p)
}

// Close commits the buffered contents.
func (f *memFile) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.appendTo {
		f.fs.files[f.name] = append(f.fs.files[f.name], f.buf.Bytes()...)
	} else {
		f.fs.files[f.name] = append([]byte(nil), f.buf.Bytes()...)
	}
	return nil
}
