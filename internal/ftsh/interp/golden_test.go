package interp_test

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/ftsh/interp"
)

var updateGolden = flag.Bool("update", false, "rewrite conformance golden files")

// corpusWorld builds the deterministic universe every conformance
// script runs in: a seeded simulator plus a small stable of fake
// commands whose behavior is keyed entirely by their arguments, so the
// scripts in testdata/ can exercise success, failure, hangs, and
// timeouts without any real I/O.
//
//	flaky N TAG   fail the first N calls (counted per TAG), then print
//	              and succeed
//	hang          sleep forever; only a canceled session ends it
//	slow N TAG    sleep N virtual seconds, print, succeed
//	wget URL      host "good*": 2s transfer, print, succeed
//	              host "hang*": sleep forever
//	              host "slowbad*": fail after 1s
//	              anything else: fail immediately
func corpusWorld(seed int64) *world {
	w := newWorld(seed)
	calls := map[string]int{}
	w.runner.Register("flaky", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		if len(cmd.Args) != 2 {
			return fmt.Errorf("flaky: want 2 args, got %d", len(cmd.Args))
		}
		n, err := strconv.Atoi(cmd.Args[0])
		if err != nil {
			return err
		}
		tag := cmd.Args[1]
		calls[tag]++
		if calls[tag] <= n {
			return core.ErrFailure
		}
		fmt.Fprintf(cmd.Stdout, "flaky %s ok on call %d\n", tag, calls[tag])
		return nil
	})
	w.runner.Register("hang", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		return rt.Sleep(ctx, 1000*time.Hour)
	})
	w.runner.Register("slow", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		if len(cmd.Args) != 2 {
			return fmt.Errorf("slow: want 2 args, got %d", len(cmd.Args))
		}
		n, err := strconv.Atoi(cmd.Args[0])
		if err != nil {
			return err
		}
		if err := rt.Sleep(ctx, time.Duration(n)*time.Second); err != nil {
			return err
		}
		fmt.Fprintf(cmd.Stdout, "slow %s done\n", cmd.Args[1])
		return nil
	})
	w.runner.Register("wget", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		if len(cmd.Args) != 1 {
			return fmt.Errorf("wget: want 1 arg, got %d", len(cmd.Args))
		}
		url := cmd.Args[0]
		switch {
		case strings.Contains(url, "hang"):
			return rt.Sleep(ctx, 1000*time.Hour)
		case strings.Contains(url, "slowbad"):
			if err := rt.Sleep(ctx, time.Second); err != nil {
				return err
			}
			return core.ErrFailure
		case strings.Contains(url, "good"):
			if err := rt.Sleep(ctx, 2*time.Second); err != nil {
				return err
			}
			fmt.Fprintf(cmd.Stdout, "fetched %s\n", url)
			return nil
		default:
			return core.ErrFailure
		}
	})
	return w
}

// TestConformanceCorpus runs every testdata/*.ftsh script end to end
// through the lexer, parser, and interpreter inside the deterministic
// simulator, and compares a transcript — script output, final status,
// and virtual elapsed time — against the paired .golden file. Run with
// -update to rewrite the goldens after an intentional change.
func TestConformanceCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.ftsh"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no conformance scripts in testdata/")
	}
	for _, file := range files {
		file := file
		name := strings.TrimSuffix(filepath.Base(file), ".ftsh")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			w := corpusWorld(1)
			scriptErr := w.run(t, string(src), nil)

			var sb strings.Builder
			sb.WriteString(w.out.String())
			if scriptErr != nil {
				fmt.Fprintf(&sb, "-- error: %v\n", scriptErr)
			} else {
				sb.WriteString("-- ok\n")
			}
			fmt.Fprintf(&sb, "-- elapsed: %v\n", w.eng.Elapsed())
			got := sb.String()

			goldenPath := strings.TrimSuffix(file, ".ftsh") + ".golden"
			if *updateGolden {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("transcript mismatch for %s\n--- got ---\n%s--- want ---\n%s", file, got, want)
			}
		})
	}
}
