package interp

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Stats is the post-mortem record §4 promises: "Online or post-mortem
// analysis may determine more detailed reasons for process failure, the
// exact resources used to execute the program, the frequency of each
// failure branch, and so forth." The interpreter always collects it;
// read it after Run via Interp.Stats.
//
// Stats is safe for concurrent use, because forall branches execute in
// parallel under the real runtime.
type Stats struct {
	mu sync.Mutex

	// Commands maps command name to its invocation record.
	Commands map[string]*CommandStats
	// Trys maps a try construct's source position to its record.
	Trys map[string]*TryStats
	// ForanyWins maps a forany's source position to how often each
	// alternative won — the "frequency of each failure branch",
	// inverted: which branches actually carry the load.
	ForanyWins map[string]map[string]int64
}

// CommandStats records one command name's history.
type CommandStats struct {
	Runs     int64
	Failures int64
}

// TryStats records one try construct's history.
type TryStats struct {
	// Trys counts executions of the construct; Attempts counts body
	// attempts across them; Exhausted counts budget exhaustions;
	// CaughtBy counts exhaustions handled by a catch block.
	Trys, Attempts, Exhausted, CaughtBy int64
	// BackoffTotal accumulates time spent sleeping between attempts.
	BackoffTotal time.Duration
}

func newStats() *Stats {
	return &Stats{
		Commands:   make(map[string]*CommandStats),
		Trys:       make(map[string]*TryStats),
		ForanyWins: make(map[string]map[string]int64),
	}
}

func (s *Stats) command(name string) *CommandStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.Commands[name]
	if c == nil {
		c = &CommandStats{}
		s.Commands[name] = c
	}
	return c
}

func (s *Stats) try(pos string) *TryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.Trys[pos]
	if t == nil {
		t = &TryStats{}
		s.Trys[pos] = t
	}
	return t
}

func (s *Stats) recordCommand(name string, failed bool) {
	c := s.command(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	c.Runs++
	if failed {
		c.Failures++
	}
}

func (s *Stats) recordForanyWin(pos, item string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.ForanyWins[pos]
	if m == nil {
		m = make(map[string]int64)
		s.ForanyWins[pos] = m
	}
	m[item]++
}

// WriteTo renders a human-readable report. It implements io.WriterTo.
func (s *Stats) WriteTo(w io.Writer) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	b.WriteString("commands:\n")
	for _, name := range sortedKeys(s.Commands) {
		c := s.Commands[name]
		fmt.Fprintf(&b, "  %-20s runs=%-6d failures=%d\n", name, c.Runs, c.Failures)
	}
	b.WriteString("trys:\n")
	for _, pos := range sortedKeys(s.Trys) {
		t := s.Trys[pos]
		fmt.Fprintf(&b, "  %-8s trys=%-5d attempts=%-6d exhausted=%-4d caught=%-4d backoff=%v\n",
			pos, t.Trys, t.Attempts, t.Exhausted, t.CaughtBy, t.BackoffTotal)
	}
	if len(s.ForanyWins) > 0 {
		b.WriteString("forany winners:\n")
		for _, pos := range sortedKeys(s.ForanyWins) {
			wins := s.ForanyWins[pos]
			var parts []string
			for _, item := range sortedKeys(wins) {
				parts = append(parts, fmt.Sprintf("%s:%d", item, wins[item]))
			}
			fmt.Fprintf(&b, "  %-8s %s\n", pos, strings.Join(parts, " "))
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// sortedKeys returns the sorted keys of a string-keyed map.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
