package interp

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ftsh/ast"
	"repro/internal/ftsh/token"
)

// lookupVar resolves a variable reference, including the positional
// parameters $1..$9, $* (all args space-joined), and $# (arg count) of
// the current function frame. Unset variables expand to the empty
// string, as in the Bourne shell.
func (in *Interp) lookupVar(name string) (string, error) {
	switch name {
	case "*":
		return strings.Join(in.args, " "), nil
	case "#":
		return strconv.Itoa(len(in.args)), nil
	}
	if n, err := strconv.Atoi(name); err == nil {
		if n < 1 {
			return "", fmt.Errorf("invalid positional parameter $%s", name)
		}
		if n <= len(in.args) {
			return in.args[n-1], nil
		}
		return "", nil
	}
	return in.vars[name], nil
}

// expandWord expands a word to a single string (no splitting). A nil
// word expands to "".
func (in *Interp) expandWord(w *ast.Word) (string, error) {
	if w == nil {
		return "", nil
	}
	var b strings.Builder
	for _, seg := range w.Segs {
		switch seg.Kind {
		case token.SegLit:
			b.WriteString(seg.Text)
		case token.SegVar:
			v, err := in.lookupVar(seg.Text)
			if err != nil {
				return "", err
			}
			b.WriteString(v)
		}
	}
	return b.String(), nil
}

// expandFields expands a word into zero or more fields. An unquoted word
// consisting of a single variable reference undergoes field splitting on
// whitespace (so `forany s in ${servers}` iterates the list); all other
// words expand to exactly one field, except that an unquoted word
// expanding to "" produces no field.
func (in *Interp) expandFields(w *ast.Word) ([]string, error) {
	if !w.Quoted && len(w.Segs) == 1 && w.Segs[0].Kind == token.SegVar {
		v, err := in.lookupVar(w.Segs[0].Text)
		if err != nil {
			return nil, err
		}
		return strings.Fields(v), nil
	}
	s, err := in.expandWord(w)
	if err != nil {
		return nil, err
	}
	if s == "" && !w.Quoted {
		return nil, nil
	}
	return []string{s}, nil
}

// expandList expands a word list (command argv or loop alternatives).
func (in *Interp) expandList(words []*ast.Word) ([]string, error) {
	var out []string
	for _, w := range words {
		fs, err := in.expandFields(w)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	return out, nil
}
