// Package ast defines the syntax tree of the fault tolerant shell.
package ast

import (
	"strings"
	"time"

	"repro/internal/ftsh/token"
)

// Node is any syntax-tree node.
type Node interface {
	Pos() token.Pos
}

// Script is a parsed ftsh program.
type Script struct {
	Body *Block
}

// Pos implements Node.
func (s *Script) Pos() token.Pos { return s.Body.Pos() }

// Block is a sequence of statements — ftsh's "group". A group succeeds
// iff all of its statements succeed, stopping at the first failure.
type Block struct {
	StartPos token.Pos
	Stmts    []Stmt
}

// Pos implements Node.
func (b *Block) Pos() token.Pos { return b.StartPos }

// Stmt is any statement.
type Stmt interface {
	Node
	stmt()
}

// Word is a token.WORD carried into the tree.
type Word struct {
	WordPos token.Pos
	Segs    []token.Segment
	Quoted  bool
	Raw     string
}

// Pos implements Node.
func (w *Word) Pos() token.Pos { return w.WordPos }

// Lit returns the word's literal text if it is purely literal, and
// whether it is.
func (w *Word) Lit() (string, bool) {
	var b strings.Builder
	for _, s := range w.Segs {
		if s.Kind != token.SegLit {
			return "", false
		}
		b.WriteString(s.Text)
	}
	return b.String(), true
}

// Redir is an input/output redirection attached to a command.
type Redir struct {
	Op     token.Kind // GT, GTGT, LT, GTAMP, DASHGT, DASHGTGT, DASHLT, DASHGTAMP
	Target *Word      // file name or variable name
}

// ToVar reports whether the redirection targets a shell variable.
func (r *Redir) ToVar() bool {
	switch r.Op {
	case token.DASHGT, token.DASHGTGT, token.DASHLT, token.DASHGTAMP:
		return true
	}
	return false
}

// CommandStmt invokes an external command, builtin, or shell function.
type CommandStmt struct {
	Words  []*Word
	Redirs []*Redir
}

func (c *CommandStmt) stmt() {}

// Pos implements Node.
func (c *CommandStmt) Pos() token.Pos { return c.Words[0].Pos() }

// AssignStmt sets a shell variable: `name=value`. The value extends to
// the end of the line; multiple words are joined with single spaces, so
// `servers=xxx yyy zzz` assigns a splittable list.
type AssignStmt struct {
	NamePos token.Pos
	Name    string
	Values  []*Word // may be empty for `name=`
}

func (a *AssignStmt) stmt() {}

// Pos implements Node.
func (a *AssignStmt) Pos() token.Pos { return a.NamePos }

// LimitSpec is a try budget: `for 30 minutes`, `5 times`, or
// `for 1 hour or 3 times`, optionally with a fixed retry interval:
// `try for 1 hour every 5 minutes`.
type LimitSpec struct {
	Time     time.Duration // 0 = unbounded
	Attempts int           // 0 = unbounded
	// Every, when positive, replaces the default randomized exponential
	// backoff with a fixed delay between attempts — explicit user
	// control over retry pacing.
	Every time.Duration
	// HasTime/HasAttempts record which clauses appeared in the source.
	HasTime, HasAttempts bool
}

// TryStmt is the heart of ftsh: attempt the body repeatedly with
// exponential backoff within the limit; optionally catch exhaustion.
type TryStmt struct {
	TryPos token.Pos
	Limit  LimitSpec
	Body   *Block
	Catch  *Block // nil if no catch clause
}

func (t *TryStmt) stmt() {}

// Pos implements Node.
func (t *TryStmt) Pos() token.Pos { return t.TryPos }

// ForanyStmt tries the body once per alternative until one succeeds.
type ForanyStmt struct {
	AnyPos token.Pos
	Var    string
	List   []*Word
	Body   *Block
}

func (f *ForanyStmt) stmt() {}

// Pos implements Node.
func (f *ForanyStmt) Pos() token.Pos { return f.AnyPos }

// ForallStmt runs the body for every alternative in parallel; it
// succeeds iff every branch succeeds, and a branch failure aborts the
// outstanding branches.
type ForallStmt struct {
	AllPos token.Pos
	Var    string
	List   []*Word
	Body   *Block
}

func (f *ForallStmt) stmt() {}

// Pos implements Node.
func (f *ForallStmt) Pos() token.Pos { return f.AllPos }

// ForStmt runs the body sequentially for every item; it fails at the
// first failing iteration.
type ForStmt struct {
	ForPos token.Pos
	Var    string
	List   []*Word
	Body   *Block
}

func (f *ForStmt) stmt() {}

// Pos implements Node.
func (f *ForStmt) Pos() token.Pos { return f.ForPos }

// CompareOp is a dotted comparison operator.
type CompareOp string

// Cond is a condition: a comparison of two words, a literal
// `true`/`false`, or a unary file test.
type Cond struct {
	CondPos token.Pos
	// Literal conditions: `while true`.
	IsLit bool
	Lit   bool
	// Comparison conditions: `${n} .lt. 1000`. For the unary file test
	// `.exists. name` (§6: "the presence of files named in the
	// arguments can be tested before execution"), Left is nil and Op is
	// ".exists.".
	Left  *Word
	Op    CompareOp
	Right *Word
}

// Pos implements Node.
func (c *Cond) Pos() token.Pos { return c.CondPos }

// IfStmt is `if <cond> ... elif <cond> ... else ... end`.
type IfStmt struct {
	IfPos token.Pos
	Cond  *Cond
	Then  *Block
	Elifs []ElifClause
	Else  *Block // nil if absent
}

// ElifClause is one `elif` arm.
type ElifClause struct {
	Cond *Cond
	Body *Block
}

func (i *IfStmt) stmt() {}

// Pos implements Node.
func (i *IfStmt) Pos() token.Pos { return i.IfPos }

// WhileStmt runs the body while the condition holds; a body failure
// fails the loop.
type WhileStmt struct {
	WhilePos token.Pos
	Cond     *Cond
	Body     *Block
}

func (w *WhileStmt) stmt() {}

// Pos implements Node.
func (w *WhileStmt) Pos() token.Pos { return w.WhilePos }

// FailureStmt raises an untyped failure, like `throw` (§4).
type FailureStmt struct {
	FailPos token.Pos
}

func (f *FailureStmt) stmt() {}

// Pos implements Node.
func (f *FailureStmt) Pos() token.Pos { return f.FailPos }

// SuccessStmt terminates the enclosing function or script successfully.
type SuccessStmt struct {
	OKPos token.Pos
}

func (s *SuccessStmt) stmt() {}

// Pos implements Node.
func (s *SuccessStmt) Pos() token.Pos { return s.OKPos }

// FunctionStmt defines a named function; invocation looks like a
// command. Arguments bind to $1..$9 and $* inside the body.
type FunctionStmt struct {
	FuncPos token.Pos
	Name    string
	Body    *Block
}

func (f *FunctionStmt) stmt() {}

// Pos implements Node.
func (f *FunctionStmt) Pos() token.Pos { return f.FuncPos }
