package ast

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/ftsh/token"
)

// Fprint writes a canonical source rendering of the script to w. The
// output re-parses to an equivalent tree (modulo comments, which the
// lexer discards), which makes Fprint useful for debugging,
// canonicalization, and the shell's -dump mode.
func Fprint(w io.Writer, s *Script) error {
	p := &printer{w: w}
	p.block(s.Body, 0)
	return p.err
}

// String renders the script to a string.
func String(s *Script) string {
	var b strings.Builder
	_ = Fprint(&b, s)
	return b.String()
}

type printer struct {
	w   io.Writer
	err error
}

func (p *printer) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *printer) line(indent int, format string, args ...any) {
	p.printf("%s", strings.Repeat("  ", indent))
	p.printf(format, args...)
	p.printf("\n")
}

func (p *printer) block(b *Block, indent int) {
	for _, st := range b.Stmts {
		p.stmt(st, indent)
	}
}

func (p *printer) stmt(st Stmt, indent int) {
	switch st := st.(type) {
	case *CommandStmt:
		var parts []string
		for _, w := range st.Words {
			parts = append(parts, wordSrc(w))
		}
		for _, r := range st.Redirs {
			parts = append(parts, r.Op.String(), wordSrc(r.Target))
		}
		p.line(indent, "%s", strings.Join(parts, " "))
	case *AssignStmt:
		var vals []string
		for _, v := range st.Values {
			vals = append(vals, wordSrc(v))
		}
		p.line(indent, "%s=%s", st.Name, strings.Join(vals, " "))
	case *TryStmt:
		p.line(indent, "try %s", limitSrc(st.Limit))
		p.block(st.Body, indent+1)
		if st.Catch != nil {
			p.line(indent, "catch")
			p.block(st.Catch, indent+1)
		}
		p.line(indent, "end")
	case *ForanyStmt:
		p.loop("forany", st.Var, st.List, st.Body, indent)
	case *ForallStmt:
		p.loop("forall", st.Var, st.List, st.Body, indent)
	case *ForStmt:
		p.loop("for", st.Var, st.List, st.Body, indent)
	case *WhileStmt:
		p.line(indent, "while %s", condSrc(st.Cond))
		p.block(st.Body, indent+1)
		p.line(indent, "end")
	case *IfStmt:
		p.line(indent, "if %s", condSrc(st.Cond))
		p.block(st.Then, indent+1)
		for _, e := range st.Elifs {
			p.line(indent, "elif %s", condSrc(e.Cond))
			p.block(e.Body, indent+1)
		}
		if st.Else != nil {
			p.line(indent, "else")
			p.block(st.Else, indent+1)
		}
		p.line(indent, "end")
	case *FailureStmt:
		p.line(indent, "failure")
	case *SuccessStmt:
		p.line(indent, "success")
	case *FunctionStmt:
		p.line(indent, "function %s", st.Name)
		p.block(st.Body, indent+1)
		p.line(indent, "end")
	default:
		p.line(indent, "# unknown statement %T", st)
	}
}

func (p *printer) loop(kw, varName string, list []*Word, body *Block, indent int) {
	var items []string
	for _, w := range list {
		items = append(items, wordSrc(w))
	}
	p.line(indent, "%s %s in %s", kw, varName, strings.Join(items, " "))
	p.block(body, indent+1)
	p.line(indent, "end")
}

// wordSrc renders a word as source text, segment by segment, so the
// result re-lexes to the same segments with the same quoting: quoted
// literal runs are emitted inside double quotes, unquoted runs are
// emitted bare with backslash escapes where a character would otherwise
// change the lexing.
func wordSrc(w *Word) string {
	if w == nil || len(w.Segs) == 0 {
		return `""`
	}
	// First decide each literal segment's effective output quoting
	// (control whitespace cannot be escaped outside quotes, so such
	// segments are promoted), then merge adjacent literals that end up
	// with the same quoting — the lexer would merge them on re-parse,
	// so printing must too or it would not be stable.
	type outSeg struct {
		kind   token.SegKind
		text   string
		quoted bool
	}
	var norm []outSeg
	for _, seg := range w.Segs {
		if seg.Kind == token.SegVar {
			norm = append(norm, outSeg{kind: token.SegVar, text: seg.Text})
			continue
		}
		q := seg.Quoted || seg.Text == "" || strings.ContainsAny(seg.Text, "\n\t\r")
		if n := len(norm); n > 0 && norm[n-1].kind == token.SegLit && norm[n-1].quoted == q {
			norm[n-1].text += seg.Text
			continue
		}
		norm = append(norm, outSeg{kind: token.SegLit, text: seg.Text, quoted: q})
	}
	// A word like `foran''y` merges to the bare text of a keyword; it
	// was not a keyword originally (part of it was quoted), so it must
	// not be printed bare or it would re-parse as one.
	if len(norm) == 1 && norm[0].kind == token.SegLit && !norm[0].quoted &&
		w.Quoted && (token.Keywords[norm[0].text] || norm[0].text == "or") {
		norm[0].quoted = true
	}

	var b strings.Builder
	for _, seg := range norm {
		if seg.kind == token.SegVar {
			b.WriteString("${")
			b.WriteString(seg.text)
			b.WriteString("}")
			continue
		}
		// Iterate bytes, not runes: words may carry arbitrary bytes and
		// must round-trip exactly.
		if seg.quoted {
			b.WriteByte('"')
			for i := 0; i < len(seg.text); i++ {
				c := seg.text[i]
				switch c {
				case '"', '\\', '$':
					b.WriteByte('\\')
					b.WriteByte(c)
				case '\n':
					b.WriteString(`\n`)
				case '\t':
					b.WriteString(`\t`)
				default:
					b.WriteByte(c)
				}
			}
			b.WriteByte('"')
		} else {
			for i := 0; i < len(seg.text); i++ {
				c := seg.text[i]
				switch c {
				case ' ', '"', '\'', '#', ';', '<', '>', '$', '\\':
					b.WriteByte('\\')
					b.WriteByte(c)
				default:
					b.WriteByte(c)
				}
			}
		}
	}
	return b.String()
}

// limitSrc renders a try budget.
func limitSrc(l LimitSpec) string {
	var parts []string
	if l.HasTime {
		parts = append(parts, "for "+durationSrc(l.Time))
	}
	if l.HasAttempts {
		parts = append(parts, fmt.Sprintf("%d times", l.Attempts))
	}
	s := strings.Join(parts, " or ")
	if l.Every > 0 {
		s += " every " + durationSrc(l.Every)
	}
	return s
}

// durationSrc renders a duration in the largest exact ftsh unit.
func durationSrc(d time.Duration) string {
	type unit struct {
		d    time.Duration
		name string
	}
	units := []unit{
		{24 * time.Hour, "days"},
		{time.Hour, "hours"},
		{time.Minute, "minutes"},
		{time.Second, "seconds"},
		{time.Millisecond, "ms"},
	}
	for _, u := range units {
		if d >= u.d && d%u.d == 0 {
			n := d / u.d
			name := u.name
			if n == 1 && name != "ms" {
				name = strings.TrimSuffix(name, "s")
			}
			return fmt.Sprintf("%d %s", n, name)
		}
	}
	return fmt.Sprintf("%g seconds", d.Seconds())
}

// condSrc renders a condition.
func condSrc(c *Cond) string {
	if c.IsLit {
		if c.Lit {
			return "true"
		}
		return "false"
	}
	if c.Op == ".exists." {
		return fmt.Sprintf(".exists. %s", wordSrc(c.Right))
	}
	return fmt.Sprintf("%s %s %s", wordSrc(c.Left), c.Op, wordSrc(c.Right))
}
