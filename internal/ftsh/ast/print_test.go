package ast_test

import (
	"strings"
	"testing"

	"repro/internal/ftsh/ast"
	"repro/internal/ftsh/parser"
)

// reparse asserts that printing and re-parsing a script converges: the
// second print must equal the first (print∘parse is idempotent on
// printed output).
func reparse(t *testing.T, src string) string {
	t.Helper()
	s1, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	out1 := ast.String(s1)
	s2, err := parser.Parse(out1)
	if err != nil {
		t.Fatalf("re-parse of printed output failed: %v\nprinted:\n%s", err, out1)
	}
	out2 := ast.String(s2)
	if out1 != out2 {
		t.Fatalf("print not stable:\nfirst:\n%s\nsecond:\n%s", out1, out2)
	}
	return out1
}

func TestPrintSimpleCommand(t *testing.T) {
	out := reparse(t, "wget http://server/file.tar.gz\n")
	if !strings.Contains(out, "wget http://server/file.tar.gz") {
		t.Fatalf("out = %q", out)
	}
}

func TestPrintPaperNestedTry(t *testing.T) {
	src := `try for 30 minutes
  try for 5 minutes
    wget http://server/file.tar.gz
  end
  try for 1 minute or 3 times
    gunzip file.tar.gz
    tar xvf file.tar
  end
end
`
	out := reparse(t, src)
	for _, want := range []string{"try for 30 minutes", "try for 5 minutes", "try for 1 minute or 3 times"} {
		if !strings.Contains(out, want) {
			t.Fatalf("out = %q missing %q", out, want)
		}
	}
}

func TestPrintTryCatch(t *testing.T) {
	out := reparse(t, "try 5 times\n  wget x\ncatch\n  rm -f x\n  failure\nend\n")
	if !strings.Contains(out, "catch") || !strings.Contains(out, "failure") {
		t.Fatalf("out = %q", out)
	}
}

func TestPrintLoopsAndConds(t *testing.T) {
	src := `forany server in xxx yyy zzz
  wget http://${server}/f
end
forall f in a b
  get ${f}
end
for i in 1 2 3
  echo ${i}
end
while ${n} .lt. 10
  expr ${n} + 1 -> n
end
if ${x} .eql. ok
  echo yes
elif ${x} .eq. 2
  echo two
else
  echo no
end
`
	out := reparse(t, src)
	for _, want := range []string{"forany server in xxx yyy zzz", "forall f in a b",
		"while ${n} .lt. 10", "elif ${x} .eq. 2", "-> n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("out = %q missing %q", out, want)
		}
	}
}

func TestPrintQuotedWords(t *testing.T) {
	out := reparse(t, `echo "hello world" "a\"b" "got ${x}!"
`)
	if !strings.Contains(out, `"hello world"`) {
		t.Fatalf("out = %q", out)
	}
}

func TestPrintAssignAndFunctions(t *testing.T) {
	src := `servers=xxx yyy zzz
function fetch
  wget http://${1}/data
end
fetch ${servers}
success
`
	out := reparse(t, src)
	if !strings.Contains(out, "servers=xxx yyy zzz") || !strings.Contains(out, "function fetch") {
		t.Fatalf("out = %q", out)
	}
}

func TestPrintRedirections(t *testing.T) {
	out := reparse(t, "run >& log.txt\ncat < in.txt > out.txt\nsim ->& tmp\ncat -< tmp ->> all\n")
	for _, want := range []string{">& log.txt", "< in.txt", "> out.txt", "->& tmp", "-< tmp", "->> all"} {
		if !strings.Contains(out, want) {
			t.Fatalf("out = %q missing %q", out, want)
		}
	}
}

func TestPrintDurationUnits(t *testing.T) {
	out := reparse(t, "try for 2 days\n x\nend\ntry for 90 seconds\n x\nend\ntry for 250 ms\n x\nend\n")
	for _, want := range []string{"try for 2 days", "try for 90 seconds", "try for 250 ms"} {
		if !strings.Contains(out, want) {
			t.Fatalf("out = %q missing %q", out, want)
		}
	}
}

func TestWordLit(t *testing.T) {
	s, err := parser.Parse("echo plain ${v} mix${v}ed\n")
	if err != nil {
		t.Fatal(err)
	}
	cmd := s.Body.Stmts[0].(*ast.CommandStmt)
	if lit, ok := cmd.Words[1].Lit(); !ok || lit != "plain" {
		t.Fatalf("Lit = %q ok=%v", lit, ok)
	}
	if _, ok := cmd.Words[2].Lit(); ok {
		t.Fatal("var word reported as literal")
	}
	if _, ok := cmd.Words[3].Lit(); ok {
		t.Fatal("mixed word reported as literal")
	}
}

func TestPrintExistsCond(t *testing.T) {
	out := reparse(t, "if .exists. data/input\n  ok\nend\n")
	if !strings.Contains(out, ".exists. data/input") {
		t.Fatalf("out = %q", out)
	}
}

func TestPrintEveryClause(t *testing.T) {
	out := reparse(t, "try for 1 hour or 3 times every 30 seconds\n  x\nend\n")
	if !strings.Contains(out, "try for 1 hour or 3 times every 30 seconds") {
		t.Fatalf("out = %q", out)
	}
}

func TestPrintEscapesSpecialBytes(t *testing.T) {
	// Unquoted escapes survive the round trip.
	out := reparse(t, `echo a\ b \"x\" \$y \#z \;w \<v \>u back\\slash
`)
	for _, want := range []string{`a\ b`, `\"x\"`, `\$y`, `\#z`, `\;w`, `\<v`, `\>u`, `back\\slash`} {
		if !strings.Contains(out, want) {
			t.Fatalf("out = %q missing %q", out, want)
		}
	}
}

func TestPrintMixedQuotingMerges(t *testing.T) {
	// Adjacent runs that end with the same effective quoting merge, and
	// the printed form is stable (verified by reparse); a keyword
	// assembled from quoted pieces must stay non-keyword.
	for _, src := range []string{
		"foran''y\n",
		"tr'y' x\n",
		"e'nd'\n",
		"pre'quoted mid'post\n",
		"a\\\tb\n",
		`"or"` + "\n",
	} {
		reparse(t, src)
	}
}

func TestPrintHandlesRawBytes(t *testing.T) {
	// Non-UTF8 bytes round-trip exactly.
	reparse(t, "echo \"\xb9\xff\" ${\xb9}\n")
}

func TestPrintProgrammaticNilAndEmptyWords(t *testing.T) {
	w := &ast.Word{}
	cmd := &ast.CommandStmt{Words: []*ast.Word{{Segs: nil, Quoted: true}}}
	s := &ast.Script{Body: &ast.Block{Stmts: []ast.Stmt{cmd}}}
	out := ast.String(s)
	if !strings.Contains(out, `""`) {
		t.Fatalf("out = %q", out)
	}
	_ = w
}

func TestPrintSuccessFailureStatements(t *testing.T) {
	out := reparse(t, "failure\n")
	if !strings.Contains(out, "failure") {
		t.Fatalf("out = %q", out)
	}
	out = reparse(t, "success\n")
	if !strings.Contains(out, "success") {
		t.Fatalf("out = %q", out)
	}
}
