package token

import "testing"

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		EOF: "end of file", NEWLINE: "newline", WORD: "word",
		GT: ">", GTGT: ">>", LT: "<", GTAMP: ">&",
		DASHGT: "->", DASHGTGT: "->>", DASHLT: "-<", DASHGTAMP: "->&",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestPosString(t *testing.T) {
	p := Pos{Line: 3, Col: 7}
	if p.String() != "3:7" {
		t.Fatalf("Pos = %q", p.String())
	}
}

func TestIsBare(t *testing.T) {
	bare := Token{Kind: WORD, Segs: []Segment{{Kind: SegLit, Text: "try"}}}
	if !bare.IsBare("try") || bare.IsBare("end") {
		t.Fatal("bare word misclassified")
	}
	quoted := Token{Kind: WORD, Quoted: true, Segs: []Segment{{Kind: SegLit, Text: "try"}}}
	if quoted.IsBare("try") {
		t.Fatal("quoted word must never be a keyword")
	}
	varWord := Token{Kind: WORD, Segs: []Segment{{Kind: SegVar, Text: "try"}}}
	if varWord.IsBare("try") {
		t.Fatal("variable reference must never be a keyword")
	}
	multi := Token{Kind: WORD, Segs: []Segment{{Kind: SegLit, Text: "tr"}, {Kind: SegLit, Text: "y"}}}
	if multi.IsBare("try") {
		t.Fatal("multi-segment word must not be a keyword")
	}
}

func TestKeywordTable(t *testing.T) {
	for _, kw := range []string{"try", "catch", "end", "forany", "forall",
		"for", "while", "in", "if", "elif", "else", "function", "failure", "success"} {
		if !Keywords[kw] {
			t.Errorf("missing keyword %q", kw)
		}
	}
	if Keywords["echo"] {
		t.Error("echo must not be a keyword")
	}
}

func TestCompareOpsTable(t *testing.T) {
	for _, op := range []string{".lt.", ".gt.", ".le.", ".ge.", ".eq.", ".ne.", ".eql.", ".neql."} {
		if !CompareOps[op] {
			t.Errorf("missing operator %q", op)
		}
	}
	if CompareOps[".weird."] {
		t.Error(".weird. accepted")
	}
}
