// Package token defines the lexical tokens of the fault tolerant shell
// (ftsh) described in §4 of the paper and in UW-CS-TR-1476.
package token

import "fmt"

// Kind identifies a token class.
type Kind int

// Token kinds. Keywords are recognized by the parser from WORD tokens at
// command position, so that `echo try` still works; only structural
// punctuation is distinguished lexically.
const (
	EOF     Kind = iota
	NEWLINE      // statement separator (also ';')
	WORD         // a word, possibly containing variable references

	// Redirections to files.
	GT    // >   stdout to file (truncate)
	GTGT  // >>  stdout to file (append)
	LT    // <   stdin from file
	GTAMP // >&  stdout+stderr to file

	// Redirections to shell variables (§4: "a dash prefixes the arrow").
	DASHGT    // ->   stdout to variable
	DASHGTGT  // ->>  stdout appended to variable
	DASHLT    // -<   stdin from variable
	DASHGTAMP // ->&  stdout+stderr to variable
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case EOF:
		return "end of file"
	case NEWLINE:
		return "newline"
	case WORD:
		return "word"
	case GT:
		return ">"
	case GTGT:
		return ">>"
	case LT:
		return "<"
	case GTAMP:
		return ">&"
	case DASHGT:
		return "->"
	case DASHGTGT:
		return "->>"
	case DASHLT:
		return "-<"
	case DASHGTAMP:
		return "->&"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Pos locates a token in its source for error messages.
type Pos struct {
	Line int // 1-based
	Col  int // 1-based, in bytes
}

// String renders line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// SegKind distinguishes the parts of a WORD.
type SegKind int

// Word segment kinds.
const (
	SegLit SegKind = iota // literal text
	SegVar                // ${name} or $name reference
)

// Segment is one piece of a word: literal text or a variable reference.
type Segment struct {
	Kind SegKind
	Text string // literal text, or the variable name
	// Quoted marks literal text that came from inside quotes. It
	// matters for assignment and keyword recognition (`"a=b"` is a
	// command, `a="b c"` an assignment) and for faithful printing.
	Quoted bool
}

// Token is a lexical token. WORD tokens carry their segment breakdown and
// quoting information.
type Token struct {
	Kind Kind
	Pos  Pos
	// Text is the raw token text, for diagnostics.
	Text string
	// Segs is the segment breakdown of a WORD.
	Segs []Segment
	// Quoted marks a WORD any part of which was quoted; quoted words are
	// never keywords and never split after expansion.
	Quoted bool
}

// IsBare reports whether the token is an unquoted WORD exactly equal to s
// — the test used for keyword recognition.
func (t Token) IsBare(s string) bool {
	return t.Kind == WORD && !t.Quoted && len(t.Segs) == 1 &&
		t.Segs[0].Kind == SegLit && !t.Segs[0].Quoted && t.Segs[0].Text == s
}

// Keywords of the language, recognized at command position.
var Keywords = map[string]bool{
	"try": true, "catch": true, "end": true,
	"forany": true, "forall": true, "for": true, "while": true,
	"in": true, "if": true, "elif": true, "else": true,
	"function": true, "failure": true, "success": true,
	"return": true,
}

// CompareOps are the dotted comparison operators of ftsh conditions.
// Numeric: .lt. .gt. .le. .ge. .eq. .ne. — String: .eql. .neql.
var CompareOps = map[string]bool{
	".lt.": true, ".gt.": true, ".le.": true, ".ge.": true,
	".eq.": true, ".ne.": true, ".eql.": true, ".neql.": true,
}
