package channel

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

func TestSingleTransmitterNeverCollides(t *testing.T) {
	e := sim.New(1)
	ch := New(e)
	var err error
	e.Spawn("s", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err = ch.Transmit(p, e.Context(), time.Millisecond); err != nil {
				return
			}
		}
	})
	if runErr := e.Run(); runErr != nil {
		t.Fatal(runErr)
	}
	if err != nil {
		t.Fatalf("err = %v", err)
	}
	if ch.Successes != 10 || ch.Collisions != 0 {
		t.Fatalf("successes=%d collisions=%d", ch.Successes, ch.Collisions)
	}
}

func TestOverlappingTransmissionsBothCollide(t *testing.T) {
	e := sim.New(1)
	ch := New(e)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("s", func(p *sim.Proc) {
			if i == 1 {
				p.SleepFor(500 * time.Microsecond) // overlap mid-frame
			}
			errs[i] = ch.Transmit(p, e.Context(), time.Millisecond)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, err := range errs {
		if !core.IsCollision(err) {
			t.Errorf("station %d err = %v, want collision", i, err)
		}
	}
	if ch.Collisions != 2 || ch.Successes != 0 {
		t.Fatalf("collisions=%d successes=%d", ch.Collisions, ch.Successes)
	}
}

func TestNonOverlappingTransmissionsSucceed(t *testing.T) {
	e := sim.New(1)
	ch := New(e)
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("s", func(p *sim.Proc) {
			p.SleepFor(time.Duration(i) * 2 * time.Millisecond)
			if err := ch.Transmit(p, e.Context(), time.Millisecond); err != nil {
				t.Errorf("station %d: %v", i, err)
			}
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if ch.Successes != 2 {
		t.Fatalf("successes = %d", ch.Successes)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	e := sim.New(1)
	ch := New(e)
	e.Spawn("s", func(p *sim.Proc) {
		// 1 ms busy, 1 ms idle, 1 ms busy => 2/3 utilization at t=3ms.
		_ = ch.Transmit(p, e.Context(), time.Millisecond)
		p.SleepFor(time.Millisecond)
		_ = ch.Transmit(p, e.Context(), time.Millisecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if u := ch.Utilization(); u < 0.66 || u > 0.67 {
		t.Fatalf("utilization = %v, want 2/3", u)
	}
}

func TestEthernetStationsNeverCollide(t *testing.T) {
	ch := RunStations(3, 20, time.Second, DefaultStationConfig(core.Ethernet))
	if ch.Collisions != 0 {
		t.Fatalf("collisions = %d, want 0 with carrier sense", ch.Collisions)
	}
	if ch.Successes == 0 {
		t.Fatal("no frames delivered")
	}
}

func TestDisciplineOrderingOnChannel(t *testing.T) {
	window := 2 * time.Second
	n := 30
	eth := RunStations(5, n, window, DefaultStationConfig(core.Ethernet))
	aloha := RunStations(5, n, window, DefaultStationConfig(core.Aloha))
	fixed := RunStations(5, n, window, DefaultStationConfig(core.Fixed))
	if eth.Successes <= aloha.Successes {
		t.Errorf("ethernet %d not above aloha %d", eth.Successes, aloha.Successes)
	}
	if aloha.Successes <= fixed.Successes {
		t.Errorf("aloha %d not above fixed %d", aloha.Successes, fixed.Successes)
	}
	// The original Aloha result: the pure-collision medium saturates at
	// a small fraction of the Ethernet goodput under load.
	if fixed.Successes*2 > eth.Successes {
		t.Errorf("fixed %d not far below ethernet %d", fixed.Successes, eth.Successes)
	}
}

func TestRandomizedBackoffBeatsSynchronized(t *testing.T) {
	// The §3 requirement: "the problem will not be solved if all
	// clients return at the same instant, so some asymmetry or random
	// factor is needed to discourage cascading collisions."
	window := 2 * time.Second
	run := func(randomized bool) int64 {
		var total int64
		for seed := int64(1); seed <= 3; seed++ {
			cfg := DefaultStationConfig(core.Aloha)
			cfg.Backoff = &core.Backoff{
				Base: cfg.Frame, Cap: 1024 * cfg.Frame, Factor: 2,
				RandMin: 1, RandMax: 2,
			}
			if !randomized {
				cfg.Backoff.RandMax = 1
			}
			ch := RunStations(seed, 30, window, cfg)
			total += ch.Successes
		}
		return total
	}
	rand := run(true)
	sync := run(false)
	if rand <= sync {
		t.Fatalf("randomized %d not above synchronized %d", rand, sync)
	}
}

// Property: successes plus collisions equals total frames whose
// transmission completed, and utilization stays in [0,1].
func TestQuickChannelAccounting(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 1
		cfg := DefaultStationConfig(core.Discipline(seed % 3))
		ch := RunStations(seed, n, 300*time.Millisecond, cfg)
		u := ch.Utilization()
		return u >= 0 && u <= 1.0000001 && ch.Successes >= 0 && ch.Collisions >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
