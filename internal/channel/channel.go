// Package channel models the medium the paper's discipline is named
// after: a single shared broadcast channel in which overlapping
// transmissions destroy each other (Metcalfe & Boggs, 1976). It exists
// to validate the core retry discipline against its origin and to
// demonstrate the classic results the paper leans on:
//
//   - without carrier sense the medium behaves like Aloha and saturates
//     at a small fraction of capacity;
//   - without the randomized backoff factor, synchronized stations
//     re-collide forever (cascading collisions);
//   - with carrier sense and randomized exponential backoff the channel
//     sustains high utilization.
package channel

import (
	"context"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// Channel is a shared broadcast medium. Any two transmissions that
// overlap in time corrupt each other; both transmitters observe the
// collision only at the end of their frame (collision detect).
// InjectTransmit is the injection site covering one frame transmission
// (see core.Injector): an injected error is a noise burst corrupting
// the frame, an injected delay stretches the transmission.
const InjectTransmit = "channel/transmit"

type Channel struct {
	eng    *sim.Engine
	inj    core.Injector
	active []*frame

	// Successes and Collisions count completed and corrupted frames;
	// BusyTime accumulates time the medium spent carrying at least one
	// frame (useful or not), for utilization accounting.
	Successes  int64
	Collisions int64

	busySince time.Duration
	busyTotal time.Duration
}

// frame is one in-flight transmission.
type frame struct {
	corrupted bool
}

// New returns an idle channel on engine e.
func New(e *sim.Engine) *Channel { return &Channel{eng: e} }

// SetInjector installs a fault injector consulted on every transmission.
// A nil injector (the default) disables injection.
func (c *Channel) SetInjector(inj core.Injector) { c.inj = inj }

// Busy reports whether a transmission is in flight — the carrier-sense
// observable.
func (c *Channel) Busy() bool { return len(c.active) > 0 }

// Utilization reports the fraction of elapsed time the medium was busy.
func (c *Channel) Utilization() float64 {
	total := c.eng.Elapsed()
	if total == 0 {
		return 0
	}
	busy := c.busyTotal
	if len(c.active) > 0 {
		busy += total - c.busySince
	}
	return float64(busy) / float64(total)
}

// Transmit sends one frame of duration d from process p. If any other
// frame overlaps it, both are corrupted and Transmit returns a
// collision error — after the full frame time, because a transmitter
// only discovers the damage by observing the medium (§3: "the client
// must observe the effects of its actions rather than simply assume
// their success").
func (c *Channel) Transmit(p *sim.Proc, ctx context.Context, d time.Duration) error {
	f := &frame{}
	// Chaos seam: a noise burst corrupts the frame regardless of other
	// traffic; injected latency stretches the transmission (and so
	// widens its collision window).
	if fa := core.InjectAt(c.inj, InjectTransmit); !fa.Zero() {
		d += fa.Delay
		if fa.Err != nil {
			f.corrupted = true
		}
	}
	if len(c.active) > 0 {
		f.corrupted = true
		for _, other := range c.active {
			other.corrupted = true
		}
	} else {
		c.busySince = c.eng.Elapsed()
	}
	c.active = append(c.active, f)

	err := p.Sleep(ctx, d)

	for i, other := range c.active {
		if other == f {
			c.active = append(c.active[:i], c.active[i+1:]...)
			break
		}
	}
	if len(c.active) == 0 {
		c.busyTotal += c.eng.Elapsed() - c.busySince
	}
	if err != nil {
		return err
	}
	if f.corrupted {
		c.Collisions++
		return core.Collision("channel", nil)
	}
	c.Successes++
	return nil
}

// Sense returns a carrier-sense hook for core.Client: defer while the
// medium is busy.
func (c *Channel) Sense() func(ctx context.Context) error {
	return core.ThresholdSense("carrier", func() int {
		if c.Busy() {
			return 0
		}
		return 1
	}, 1)
}

// StationConfig shapes one transmitting station.
type StationConfig struct {
	// Discipline selects Fixed, Aloha, or Ethernet behaviour.
	Discipline core.Discipline
	// Frame is the transmission duration.
	Frame time.Duration
	// Gap is the idle time between a station's successive frames.
	Gap time.Duration
	// TryLimit bounds the retries for one frame.
	TryLimit core.Limit
	// Backoff optionally overrides the paper-default backoff.
	Backoff *core.Backoff
}

// DefaultStationConfig returns a millisecond-scale station: 1 ms
// frames, 5 ms mean gap, generous retry budget.
func DefaultStationConfig(d core.Discipline) StationConfig {
	return StationConfig{
		Discipline: d,
		Frame:      time.Millisecond,
		Gap:        5 * time.Millisecond,
		TryLimit:   core.For(time.Minute),
	}
}

// Station transmits frames through the channel until ctx is canceled.
type Station struct {
	// Sent counts this station's successful frames; Lost counts frames
	// abandoned after the retry budget.
	Sent, Lost int64
}

// Loop runs the station.
func (s *Station) Loop(p *sim.Proc, ctx context.Context, ch *Channel, cfg StationConfig) {
	var bo *core.Backoff
	if cfg.Backoff != nil {
		// Copy the template: a Backoff is per-client state, and sharing
		// one across stations would (accidentally) desynchronize them.
		b := *cfg.Backoff
		bo = &b
		if bo.Rand == nil {
			bo.Rand = p.Rand
		}
	} else {
		bo = core.NewBackoff(p.Rand)
		// Scale the paper's second-scale backoff to frame time.
		bo.Base = cfg.Frame
		bo.Cap = 1024 * cfg.Frame
	}
	client := &core.Client{
		Rt:         p,
		Discipline: cfg.Discipline,
		Limit:      cfg.TryLimit,
		Sense:      ch.Sense(),
		Backoff:    bo,
	}
	for ctx.Err() == nil {
		err := client.Do(ctx, func(ctx context.Context) error {
			return ch.Transmit(p, ctx, cfg.Frame)
		})
		switch {
		case err == nil:
			s.Sent++
		case ctx.Err() != nil:
			return
		default:
			s.Lost++
		}
		// Randomize the gap so offered load is smooth.
		gap := time.Duration(float64(cfg.Gap) * (0.5 + p.Rand()))
		if gap > 0 {
			if p.Sleep(ctx, gap) != nil {
				return
			}
		}
	}
}

// RunStations drives n identical stations for the window and returns
// the channel for inspection.
func RunStations(seed int64, n int, window time.Duration, cfg StationConfig) *Channel {
	e := sim.New(seed)
	ch := New(e)
	ctx, cancel := e.WithTimeout(e.Context(), window)
	defer cancel()
	for i := 0; i < n; i++ {
		e.Spawn("station", func(p *sim.Proc) {
			var st Station
			st.Loop(p, ctx, ch, cfg)
		})
	}
	if err := e.Run(); err != nil {
		panic("channel: " + err.Error())
	}
	return ch
}
