package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// cli runs the shell with the given arguments, returning exit code and
// captured output.
func cli(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(context.Background(), args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestCLIInlineScript(t *testing.T) {
	code, out, errOut := cli(t, "-c", "echo hello from the grid")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "hello from the grid") {
		t.Fatalf("out = %q", out)
	}
}

func TestCLIScriptFileWithArgs(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "greet.ftsh")
	script := "echo greetings ${1} and ${2} of ${#}\n"
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := cli(t, path, "alice", "bob")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "greetings alice and bob of 2") {
		t.Fatalf("out = %q", out)
	}
}

func TestCLIFailurePropagatesExitCode(t *testing.T) {
	code, _, errOut := cli(t, "-c", "failure")
	if code != 1 {
		t.Fatalf("code = %d, want 1 (stderr %q)", code, errOut)
	}
	if !strings.Contains(errOut, "failure") {
		t.Fatalf("stderr = %q", errOut)
	}
}

func TestCLIMissingScript(t *testing.T) {
	code, _, errOut := cli(t)
	if code != 2 || !strings.Contains(errOut, "usage") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestCLIUnreadableFile(t *testing.T) {
	code, _, _ := cli(t, "/definitely/not/a/file.ftsh")
	if code != 111 {
		t.Fatalf("code = %d, want 111", code)
	}
}

func TestCLIDumpCanonicalForm(t *testing.T) {
	code, out, errOut := cli(t, "-dump", "-c", "try for 90 seconds\nwget http://${h}/f\nend")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "try for 90 seconds") || !strings.Contains(out, "${h}") {
		t.Fatalf("out = %q", out)
	}
}

func TestCLIDumpSyntaxError(t *testing.T) {
	code, _, errOut := cli(t, "-dump", "-c", "try for 30 bogons\nx\nend")
	if code != 1 || !strings.Contains(errOut, "bogons") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestCLIStatsReport(t *testing.T) {
	code, _, errOut := cli(t, "-stats", "-c", "echo one\ntrue")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(errOut, "post-mortem") || !strings.Contains(errOut, "commands:") {
		t.Fatalf("stderr = %q", errOut)
	}
}

func TestCLICanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut bytes.Buffer
	code := run(ctx, []string{"-c", "echo hi"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("code = %d, want 1 for canceled context", code)
	}
}

func TestCLIBadFlag(t *testing.T) {
	code, _, _ := cli(t, "-no-such-flag")
	if code != 2 {
		t.Fatalf("code = %d, want 2", code)
	}
}

func TestCLIRealPipeline(t *testing.T) {
	// Full stack with a real process: capture uname into a variable.
	code, out, errOut := cli(t, "-c", "uname -> os\necho os is ${os}")
	if code != 0 {
		t.Skipf("uname unavailable: %q", errOut)
	}
	if !strings.Contains(out, "os is ") {
		t.Fatalf("out = %q", out)
	}
}

func TestCLISeededShuffleIsReproducible(t *testing.T) {
	// With -shuffle and a fixed -seed, forany winner order (and thus
	// output) is identical across runs; seeding must not break anything
	// on the ordinary path either.
	script := "forany x in a b c d e f g h\n echo picked ${x}\nend\n"
	_, a, _ := cli(t, "-seed", "7", "-shuffle", "-c", script)
	_, b, _ := cli(t, "-seed", "7", "-shuffle", "-c", script)
	if a != b {
		t.Fatalf("same seed produced different output:\n%q\n%q", a, b)
	}
	code, out, errOut := cli(t, "-seed", "7", "-c", "echo seeded ok")
	if code != 0 || !strings.Contains(out, "seeded ok") {
		t.Fatalf("code=%d out=%q stderr=%q", code, out, errOut)
	}
}
