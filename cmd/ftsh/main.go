// Command ftsh is the fault tolerant shell of Thain & Livny (HPDC 2003):
// a scripting language that exposes failure handling — try with time and
// attempt budgets, exponential backoff, alternation — at the top level
// of programming.
//
// Usage:
//
//	ftsh script.ftsh [args...]
//	ftsh -c 'try for 30 seconds
//	           wget http://server/file
//	         end'
//
// Each external command runs in its own process session; when a try
// budget expires, the whole session receives SIGTERM, then SIGKILL
// after a grace period, so runaway children cannot outlive their
// budget. Script positional arguments are available as ${1}..${9}, $*
// and $#.
//
// -trace records every try's attempt/backoff timeline, with spans for
// try/forany/forall constructs named by script position, as
// line-delimited JSON (the same format gridbench -trace emits).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/ftsh/ast"
	"repro/internal/ftsh/interp"
	"repro/internal/ftsh/parser"
	"repro/internal/proc"
	"repro/internal/trace"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI with explicit arguments and streams, so tests
// can drive it without touching process globals.
func run(ctx context.Context, argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ftsh", flag.ContinueOnError)
	fs.SetOutput(stderr)
	command := fs.String("c", "", "execute this script text instead of a file")
	logPath := fs.String("log", "", "append an execution trace to this file")
	grace := fs.Duration("grace", proc.DefaultGrace, "delay between SIGTERM and SIGKILL on timeout")
	shuffle := fs.Bool("shuffle", false, "randomize forany order")
	maxForall := fs.Int("max-forall", 0, "bound concurrent forall branches (0 = unlimited)")
	dump := fs.Bool("dump", false, "parse the script and print its canonical form instead of running it")
	stats := fs.Bool("stats", false, "print a post-mortem execution report to stderr on exit")
	seed := fs.Int64("seed", 0, "seed for backoff jitter and forany shuffling (0 = nondeterministic)")
	tracePath := fs.String("trace", "", "record a JSONL event trace (attempts, backoffs, spans) to this file")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	var src, name string
	args := fs.Args()
	switch {
	case *command != "":
		src, name = *command, "-c"
	case len(args) > 0:
		data, err := os.ReadFile(args[0])
		if err != nil {
			fmt.Fprintf(stderr, "ftsh: %v\n", err)
			return 111
		}
		src, name = string(data), args[0]
		args = args[1:]
	default:
		fmt.Fprintln(stderr, "usage: ftsh [-c script] [-log file] [script.ftsh args...]")
		return 2
	}

	if *dump {
		script, err := parser.Parse(src)
		if err != nil {
			fmt.Fprintf(stderr, "ftsh: %s: %v\n", name, err)
			return 1
		}
		if err := ast.Fprint(stdout, script); err != nil {
			fmt.Fprintf(stderr, "ftsh: %v\n", err)
			return 1
		}
		return 0
	}

	start := time.Now()
	cfg := interp.Config{
		Runner:        &proc.RealRunner{Grace: *grace},
		Runtime:       core.NewReal(*seed),
		Stdout:        stdout,
		Stderr:        stderr,
		FS:            interp.OSFS{},
		ShuffleForany: *shuffle,
		MaxForall:     *maxForall,
	}
	var tracer *trace.Tracer
	if *tracePath != "" {
		tracer = trace.New()
		tracer.SetMeta(trace.Meta{Seed: *seed, Scenario: name})
		cfg.Trace = tracer.NewClient("ftsh", "main", func() time.Duration { return time.Since(start) })
	}
	if *logPath != "" {
		f, err := os.OpenFile(*logPath, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			fmt.Fprintf(stderr, "ftsh: %v\n", err)
			return 111
		}
		defer f.Close()
		cfg.Log = f
	}

	in := interp.New(cfg)
	in.SetArgs(args)

	err := in.RunSource(ctx, src)
	if *stats {
		fmt.Fprintf(stderr, "--- ftsh post-mortem (%v) ---\n", time.Since(start).Round(time.Millisecond))
		if _, werr := in.Stats().WriteTo(stderr); werr != nil {
			fmt.Fprintf(stderr, "ftsh: stats: %v\n", werr)
		}
	}
	if tracer != nil {
		if werr := writeTraceFile(*tracePath, tracer); werr != nil {
			fmt.Fprintf(stderr, "ftsh: trace: %v\n", werr)
		}
	}
	if err != nil {
		fmt.Fprintf(stderr, "ftsh: %s: %v (after %v)\n", name, err, time.Since(start).Round(time.Millisecond))
		return 1
	}
	return 0
}

// writeTraceFile exports the recorded trace as line-delimited JSON.
func writeTraceFile(path string, t *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = t.WriteJSONL(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
