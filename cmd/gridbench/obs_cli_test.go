package main

import (
	"bytes"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestObsAddrNeedsWallClockBackend(t *testing.T) {
	code, _, errOut := cli(t, "-obs-addr", ":0", "-fig", "1", "-scale", "0.05")
	if code != 2 || !strings.Contains(errOut, "-obs-addr needs a wall-clock backend") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestBadMetricsFormat(t *testing.T) {
	code, _, errOut := cli(t, "-metrics", "x", "-metrics-format", "xml")
	if code != 2 || !strings.Contains(errOut, "unknown metrics format") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestNegativeMetricsInterval(t *testing.T) {
	code, _, errOut := cli(t, "-metrics", "x", "-metrics-interval", "-5s")
	if code != 2 || !strings.Contains(errOut, "negative metrics interval") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

// TestMetricsDumpFormats runs one small figure per dump format and
// checks each file carries that format's signature.
func TestMetricsDumpFormats(t *testing.T) {
	for _, tc := range []struct {
		format, want string
	}{
		{"jsonl", `"kind":`},
		{"csv", "series,t_ns,value\n"},
		{"prom", "# TYPE "},
	} {
		path := filepath.Join(t.TempDir(), "metrics."+tc.format)
		code, _, errOut := cli(t, "-fig", "1", "-scale", "0.05",
			"-metrics", path, "-metrics-format", tc.format)
		if code != 0 {
			t.Fatalf("%s: code=%d stderr=%q", tc.format, code, errOut)
		}
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(b), tc.want) {
			t.Errorf("%s dump missing %q:\n%.400s", tc.format, tc.want, b)
		}
		if !strings.Contains(string(b), "grid_engine_events_total") {
			t.Errorf("%s dump missing engine events family", tc.format)
		}
	}
}

// TestTraceQuantilesFlag checks the -trace-quantiles table rides along
// after the figure without disturbing it.
func TestTraceQuantilesFlag(t *testing.T) {
	code, out, errOut := cli(t, "-fig", "7", "-scale", "0.2", "-trace-quantiles")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	for _, want := range []string{"==== Trace quantiles ====", "p50", "p99", "holding", "cs-wait"} {
		if !strings.Contains(out, want) {
			t.Fatalf("out missing %q:\n%s", want, out)
		}
	}
}

// TestProgressFlag checks -progress emits sweep reports on stderr and
// leaves stdout untouched.
func TestProgressFlag(t *testing.T) {
	code, out, errOut := cli(t, "-fig", "1", "-scale", "0.05", "-progress")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(errOut, "36/36 cells") {
		t.Fatalf("stderr missing final progress line:\n%s", errOut)
	}
	if strings.Contains(out, "cells,") {
		t.Fatal("progress leaked onto stdout")
	}
}

// promNonzero reports whether the Prometheus text body has at least one
// sample of the family with a nonzero value.
func promNonzero(body, family string) bool {
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, family) || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		if v, err := strconv.ParseFloat(line[i+1:], 64); err == nil && v != 0 {
			return true
		}
	}
	return false
}

// TestLiveObsEndpointMidRun is the acceptance check for the live
// observability endpoint: while a live-backend figure is in flight,
// /metrics must serve nonzero carrier-occupancy and lease gauges and
// /healthz must answer ok.
func TestLiveObsEndpointMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second live-backend run")
	}
	// Reserve a free port, release it, and hand it to the CLI; the gap
	// is benign in a test process that opens no other listeners.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	done := make(chan struct{})
	var code int
	var errOut bytes.Buffer
	go func() {
		defer close(done)
		var out bytes.Buffer
		code = run([]string{"-backend", "live", "-timescale", "200",
			"-fig", "1", "-scale", "0.05", "-obs-addr", addr}, &out, &errOut)
	}()

	get := func(path string) (string, bool) {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			return "", false
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), err == nil && resp.StatusCode == http.StatusOK
	}

	var sawOccupancy, sawLease, sawHealth bool
	deadline := time.Now().Add(2 * time.Minute)
poll:
	for !(sawOccupancy && sawLease && sawHealth) {
		select {
		case <-done:
			break poll
		case <-time.After(10 * time.Millisecond):
		}
		if time.Now().After(deadline) {
			break poll
		}
		if body, ok := get("/metrics"); ok {
			sawOccupancy = sawOccupancy || promNonzero(body, "grid_carrier_occupancy")
			sawLease = sawLease || promNonzero(body, "grid_lease_grants_total")
		}
		if body, ok := get("/healthz"); ok {
			sawHealth = sawHealth || strings.Contains(body, `"status":"ok"`) &&
				strings.Contains(body, `"backend":"live"`)
		}
	}
	<-done
	if code != 0 {
		t.Fatalf("live run failed: code=%d stderr=%q", code, errOut.String())
	}
	if !sawOccupancy || !sawLease || !sawHealth {
		t.Fatalf("mid-run endpoint never showed occupancy=%v lease=%v health=%v",
			sawOccupancy, sawLease, sawHealth)
	}
}
