package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// goldenFile compares the bytes a CLI run left in a side file against
// testdata/<name>.golden, rewriting under -update like golden does.
func goldenFile(t *testing.T, name, path string) {
	t.Helper()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	gpath := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(gpath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(gpath)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/gridbench -run TestGolden -update` to create it)", err)
	}
	if string(got) != string(want) {
		t.Errorf("trace drifted from %s.\nIf the change is intentional, rerun with -update.", gpath)
	}
}

// TestGoldenFig7TraceSummary pins the -trace-summary accounting table:
// any change to event emission order or analyzer bucketing shows up
// here as a diff.
func TestGoldenFig7TraceSummary(t *testing.T) {
	golden(t, "fig7_trace_summary", "-fig", "7", "-scale", "0.2", "-trace-summary")
}

// TestGoldenFig7TraceChrome pins the Chrome trace-event export and
// checks it is one valid JSON document (what Perfetto requires).
func TestGoldenFig7TraceChrome(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	code, _, errOut := cli(t, "-fig", "7", "-scale", "0.2", "-trace", path, "-trace-format", "chrome")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	if doc.OtherData["scenario"] != "fig7" {
		t.Errorf("otherData = %v", doc.OtherData)
	}
	goldenFile(t, "fig7_trace_chrome", path)
}

// TestTraceJSONLDeterministic: same seed, byte-identical trace.
func TestTraceJSONLDeterministic(t *testing.T) {
	dir := t.TempDir()
	paths := [2]string{filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "b.jsonl")}
	var traces [2]string
	for i, p := range paths {
		code, _, errOut := cli(t, "-fig", "7", "-scale", "0.2", "-seed", "3", "-trace", p)
		if code != 0 {
			t.Fatalf("code=%d stderr=%q", code, errOut)
		}
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		traces[i] = string(data)
	}
	if traces[0] != traces[1] {
		t.Fatal("same seed produced different JSONL traces")
	}
	if !strings.HasPrefix(traces[0], `{"meta":{"seed":3,`) {
		t.Errorf("trace meta line missing or wrong: %.80s", traces[0])
	}
	// A different seed must change the trace (the runs really differ).
	other := filepath.Join(dir, "c.jsonl")
	if code, _, errOut := cli(t, "-fig", "7", "-scale", "0.2", "-seed", "4", "-trace", other); code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	data, err := os.ReadFile(other)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) == traces[0] {
		t.Error("different seeds produced identical traces")
	}
}

// TestTraceSummaryOrdering asserts the acceptance relationship on the
// Figure 7 scenario: the Ethernet reader's collision rate and penalty
// backoff share never exceed Aloha's or Fixed's on the same seed, and
// its collision rate is strictly lower.
func TestTraceSummaryOrdering(t *testing.T) {
	code, out, errOut := cli(t, "-fig", "7", "-scale", "0.2", "-trace-summary")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	rows := map[string][]string{}
	inTable := false
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) > 0 && fields[0] == "discipline" {
			inTable = true
			continue
		}
		if inTable && len(fields) >= 9 {
			rows[fields[0]] = fields
		}
	}
	for _, d := range []string{"Ethernet", "Aloha", "Fixed"} {
		if rows[d] == nil {
			t.Fatalf("summary row for %s missing:\n%s", d, out)
		}
	}
	pctCol := func(d string, i int) float64 {
		f, err := strconv.ParseFloat(strings.TrimSuffix(rows[d][i], "%"), 64)
		if err != nil {
			t.Fatalf("%s col %d = %q: %v", d, i, rows[d][i], err)
		}
		return f
	}
	const collRate, backoff = 4, 7 // column indexes in the summary table
	for _, d := range []string{"Aloha", "Fixed"} {
		if e, o := pctCol("Ethernet", collRate), pctCol(d, collRate); e >= o {
			t.Errorf("Ethernet collision rate %v%% not strictly below %s's %v%%", e, d, o)
		}
		if e, o := pctCol("Ethernet", backoff), pctCol(d, backoff); e > o {
			t.Errorf("Ethernet backoff share %v%% above %s's %v%%", e, d, o)
		}
	}
}
