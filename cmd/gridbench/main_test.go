package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/expt"
)

func cli(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, &out, &errOut)
	return code, out.String(), errOut.String()
}

func TestSingleFigure(t *testing.T) {
	code, out, errOut := cli(t, "-fig", "7", "-scale", "0.2")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	for _, want := range []string{"Figure 7", "transfers", "deferrals", "totals:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("out missing %q:\n%s", want, out)
		}
	}
}

func TestTSVFormat(t *testing.T) {
	code, out, _ := cli(t, "-fig", "6", "-scale", "0.2", "-format", "tsv")
	if code != 0 {
		t.Fatalf("code = %d", code)
	}
	if !strings.Contains(out, "t(s)\ttransfers\tcollisions") {
		t.Fatalf("no TSV header:\n%s", out)
	}
}

func TestBadFigure(t *testing.T) {
	code, _, errOut := cli(t, "-fig", "9")
	if code != 2 || !strings.Contains(errOut, "no such figure") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestBadFormat(t *testing.T) {
	code, _, errOut := cli(t, "-format", "xml")
	if code != 2 || !strings.Contains(errOut, "unknown format") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestBadBackend(t *testing.T) {
	code, _, errOut := cli(t, "-backend", "quantum")
	if code != 2 || !strings.Contains(errOut, "unknown backend") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	// The error advertises the full registry, so a typo'd name shows
	// every spelling that would have worked.
	for _, b := range expt.Backends() {
		if !strings.Contains(errOut, b) {
			t.Fatalf("backend error does not list %q: %q", b, errOut)
		}
	}
}

func TestGriddBackendServesOnlyFigGridd(t *testing.T) {
	code, _, errOut := cli(t, "-backend", "gridd", "-fig", "1")
	if code != 2 || !strings.Contains(errOut, "-backend=gridd serves only -fig gridd") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	code, _, errOut = cli(t, "-fig", "gridd")
	if code != 2 || !strings.Contains(errOut, "-fig gridd needs -backend=gridd") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	code, _, errOut = cli(t, "-gridd-addr", "http://localhost:1", "-fig", "1")
	if code != 2 || !strings.Contains(errOut, "-gridd-addr needs -backend=gridd") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestNegativeParallel(t *testing.T) {
	code, _, errOut := cli(t, "-parallel", "-3")
	if code != 2 || !strings.Contains(errOut, "negative parallel") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestNegativeTimescale(t *testing.T) {
	code, _, errOut := cli(t, "-timescale", "-10")
	if code != 2 || !strings.Contains(errOut, "negative timescale") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestLiveBackendSingleFigure(t *testing.T) {
	// One scenario end-to-end on the wall-clock backend, heavily
	// compressed so the 900-virtual-second reader window stays fast.
	code, out, errOut := cli(t, "-backend", "live", "-timescale", "20000", "-fig", "7", "-scale", "0.2")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	for _, want := range []string{"Figure 7", "transfers", "totals:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("out missing %q:\n%s", want, out)
		}
	}
}

func TestBadFlag(t *testing.T) {
	code, _, _ := cli(t, "-bogus")
	if code != 2 {
		t.Fatalf("code = %d", code)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	_, a, _ := cli(t, "-fig", "6", "-scale", "0.3")
	_, b, _ := cli(t, "-fig", "6", "-scale", "0.3")
	// Strip the timing comment lines, which legitimately vary.
	strip := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(line, "# generated in") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}
	if strip(a) != strip(b) {
		t.Fatal("same seed produced different figure data")
	}
}

func TestAllFiguresSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("all-figure run; skipped in -short")
	}
	code, out, errOut := cli(t, "-scale", "0.1")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	for i := 1; i <= 7; i++ {
		if !strings.Contains(out, "Figure "+string(rune('0'+i))) {
			t.Fatalf("missing Figure %d", i)
		}
	}
}
