package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// stripTiming drops the "# generated in ..." and "# timing: ..."
// comment lines, the only legitimately nondeterministic parts of
// gridbench output (wall-clock measurements).
func stripTiming(s string) string {
	var keep []string
	for _, line := range strings.Split(s, "\n") {
		if !strings.HasPrefix(line, "# generated in") && !strings.HasPrefix(line, "# timing:") {
			keep = append(keep, line)
		}
	}
	return strings.Join(keep, "\n")
}

// golden runs the CLI and compares its stripped output against
// testdata/<name>.golden, rewriting the file under -update.
func golden(t *testing.T, name string, args ...string) {
	t.Helper()
	code, out, errOut := cli(t, args...)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	got := stripTiming(out)
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/gridbench -run TestGolden -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s.\nIf the change is intentional, rerun with -update.\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// The golden files pin the exact seed-1 output of a representative
// figure from each scenario, in both formats, with and without a fault
// plan. Any change to simulation order, RNG consumption, or rendering
// shows up here as a diff.
func TestGoldenFig1Table(t *testing.T) { golden(t, "fig1_table", "-fig", "1", "-scale", "0.1") }
func TestGoldenFig4Table(t *testing.T) { golden(t, "fig4_table", "-fig", "4", "-scale", "0.1") }
func TestGoldenFig7Table(t *testing.T) { golden(t, "fig7_table", "-fig", "7", "-scale", "0.2") }
func TestGoldenFig7TSV(t *testing.T) {
	golden(t, "fig7_tsv", "-fig", "7", "-scale", "0.2", "-format", "tsv")
}
func TestGoldenFig7Chaos(t *testing.T) {
	golden(t, "fig7_chaos", "-fig", "7", "-scale", "0.2", "-chaos", "mixed", "-check")
}
func TestGoldenFigLATable(t *testing.T) { golden(t, "figla_table", "-fig", "la", "-scale", "0.1") }
func TestGoldenFigResTable(t *testing.T) {
	golden(t, "figres_table", "-fig", "res", "-scale", "0.1")
}
func TestGoldenFigNetTable(t *testing.T) {
	golden(t, "fignet_table", "-fig", "net", "-scale", "0.1")
}
func TestGoldenFigScaleTable(t *testing.T) {
	golden(t, "figscale_table", "-fig", "scale", "-scale", "0.01")
}

// TestGoldenFigScaleSharded pins the sharding acceptance at the CLI
// level: -shards must not change a single data byte of the figure.
func TestGoldenFigScaleSharded(t *testing.T) {
	golden(t, "figscale_table", "-fig", "scale", "-scale", "0.01", "-shards", "8")
}

// TestGoldenFigGridd pins the wire-protocol conformance checklist: a
// real daemon is spawned in-process and every "ok" line is a property
// proven over the socket, so the golden is deterministic despite the
// live HTTP transport.
func TestGoldenFigGridd(t *testing.T) {
	golden(t, "figgridd", "-fig", "gridd", "-backend", "gridd")
}

func TestDeterministicWithChaos(t *testing.T) {
	args := []string{"-fig", "3", "-scale", "0.1", "-chaos", "mixed", "-check"}
	c1, a, e1 := cli(t, args...)
	c2, b, e2 := cli(t, args...)
	if c1 != 0 || c2 != 0 {
		t.Fatalf("codes %d/%d stderr %q %q", c1, c2, e1, e2)
	}
	if stripTiming(a) != stripTiming(b) {
		t.Fatal("same seed and chaos plan produced different figure data")
	}
	// An explicit chaos seed distinct from the sim seed must change the
	// fault schedule (and thus, for this figure, the data).
	_, c, _ := cli(t, "-fig", "3", "-scale", "0.1", "-chaos", "mixed", "-chaos-seed", "99")
	if stripTiming(a) == stripTiming(c) {
		t.Error("different chaos seeds produced identical output")
	}
}

func TestChaosUnknownPlan(t *testing.T) {
	code, _, errOut := cli(t, "-chaos", "no-such-plan")
	if code != 2 || !strings.Contains(errOut, "no-such-plan") {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
}

func TestChaosBannerAndCheck(t *testing.T) {
	code, out, errOut := cli(t, "-fig", "7", "-scale", "0.2", "-chaos", "flap", "-check")
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	if !strings.Contains(out, "# chaos: plan flap, seed 1") {
		t.Errorf("missing chaos banner:\n%s", out)
	}
	if !strings.Contains(out, "# invariants: ok") {
		t.Errorf("missing invariant verdict:\n%s", out)
	}
}
