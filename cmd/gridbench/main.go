// Command gridbench regenerates the figures of "The Ethernet Approach
// to Grid Computing" (Thain & Livny, HPDC 2003) from the simulated
// substrates in this repository.
//
// Usage:
//
//	gridbench [-fig N|la|res|net|scale|gridd] [-seed S] [-scale F] [-format table|tsv]
//	          [-backend sim|live|gridd] [-timescale F] [-gridd-addr URL]
//	          [-parallel N] [-shards N] [-chaos PLAN] [-chaos-seed S] [-check]
//	          [-trace FILE] [-trace-format jsonl|chrome] [-trace-summary]
//	          [-trace-quantiles] [-metrics FILE] [-metrics-interval D]
//	          [-metrics-format jsonl|csv|prom] [-obs-addr ADDR] [-progress]
//	          [-cpuprofile FILE] [-memprofile FILE]
//
// Without -fig, every figure is produced in order. Output is plain
// aligned text (or TSV for plotting): sweep tables for Figures 1, 4,
// and 5, and time series tables for Figures 2, 3, 6, and 7. Figure
// "la" is this repository's limited-allocation ablation: the Ethernet
// submitter population under a stuck-holder fault plan, with and
// without leased FD tenure (throughput, Jain's fairness index, and
// starvation accounting; see internal/lease). Figure "res" is the
// reservation/admission-control ablation: the fourth discipline booked
// on an admission book, head-to-head against leased Ethernet, fault-free
// and under the res-flap plan (see internal/lease.Book and
// internal/expt.FigRes). Figure "net" is the unreliable-channel
// ablation: submitter populations whose client-resource messages cross
// a lossy, duplicating, partitioning network, with the survival
// mechanisms (fencing epochs, idempotency keys, retry budgets) armed
// and ablated under the dup-storm and part-flap plans (see
// internal/lease SetWire and internal/expt.FigNet). Figure "scale" is
// the million-client engine sweep: 10k/100k/1M lightweight Ethernet
// clients driven entirely by engine timers (see internal/expt.FigScale),
// whose deterministic table is followed by per-cell "# timing:" lines
// reporting wall-clock and events/sec — the engine-throughput numbers
// BENCH_expt.json records. It is sim-only and excluded from the
// default all-figures run (the 1M cell is a benchmark, not a figure of
// the paper); -shards runs its cells on the engine's sharded scheduling
// mode (power of two; output is byte-identical at any value).
//
// -chaos regenerates the figures under a named fault-injection plan
// (see internal/chaos; plans: bursts, crashes, dup-storm, flap,
// latency, mixed, part-flap, squeeze, stuck-holder, res-flap),
// deterministically scheduled from -chaos-seed. -check runs
// the invariant-checker suite alongside every figure and fails the run
// if any safety or liveness property is violated.
//
// -backend selects the execution engine: "sim" (the default) is the
// deterministic discrete-event simulator, whose output is byte-for-byte
// reproducible per seed; "live" runs the identical scenarios on real
// goroutines and wall-clock timers under compressed time (-timescale
// virtual seconds per real second, default 1000). Live runs exercise
// real scheduler interleavings, so their numbers vary run to run —
// compare them to sim output with the tolerance-band methodology in
// EXPERIMENTS.md, not byte-wise. "gridd" talks to a real networked
// gridd daemon (see cmd/gridd) over HTTP and runs the wire-protocol
// conformance checklist (-fig gridd, the only figure it serves; the
// full scenario differentials against a daemon live in
// internal/expt's TestDiffGridd* suite). By default the checklist
// spawns its own in-process daemon on a loopback listener;
// -gridd-addr points it at an externally running one instead.
//
// -parallel runs the sweep figures' independent simulation cells on N
// workers (0, the default, means GOMAXPROCS; 1 forces the serial
// path). Cells are reassembled in fixed order, so output is
// byte-identical at every setting. -cpuprofile and -memprofile write
// pprof profiles of the run for `go tool pprof`.
//
// -trace records every client's event timeline (attempts, collisions,
// carrier senses, backoffs, resource holds, injected faults) to FILE:
// line-delimited JSON by default, or — with -trace-format chrome — the
// Chrome trace-event format loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing, with one process per discipline and one thread per
// client. -trace-summary appends a per-discipline collision/backoff
// accounting table to the normal output, and -trace-quantiles a
// per-discipline span-distribution table (holding, backoff, cs-wait:
// count/min/mean/P50/P95/P99/max). Single-discipline figures
// (2, 3, 6, 7) are additionally re-run under the remaining disciplines
// on the same seed, so the trace compares all three head-to-head;
// tracing never changes the figures themselves.
//
// -metrics arms the flight recorder (see internal/obs): engine, lease,
// and carrier instruments are sampled on the backend clock every
// -metrics-interval of virtual time (default 5s) and dumped to FILE as
// line-delimited JSON, CSV, or Prometheus text (-metrics-format). On
// the sim backend the dump is byte-identical per seed at every
// -parallel setting; on the live backend it inherits the live run's
// scheduling noise. -obs-addr (live backend only) additionally serves
// the registry over HTTP while the run is in flight: /metrics
// (Prometheus text), /healthz, and net/http/pprof. -progress prints a
// one-line sweep progress report to stderr about once a second.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/expt"
	"repro/internal/obs"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the CLI with explicit arguments and streams, so tests
// can drive it without touching process globals.
func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gridbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fig := fs.String("fig", "", "figure to regenerate (1-7, la, res, net, scale, or gridd); empty means all paper figures")
	seed := fs.Int64("seed", 1, "simulation seed")
	scale := fs.Float64("scale", 1.0, "scale factor for windows and populations (1.0 = paper)")
	format := fs.String("format", "table", "output format: table or tsv")
	backend := fs.String("backend", expt.BackendSim, "execution backend: "+strings.Join(expt.Backends(), ", "))
	timescale := fs.Float64("timescale", 0, "live backend only: virtual seconds per real second (0 = default "+fmt.Sprint(expt.DefaultTimescale)+")")
	chaosName := fs.String("chaos", "", "fault-injection plan to run the figures under ("+strings.Join(chaos.Names(), ", ")+")")
	chaosSeed := fs.Int64("chaos-seed", 0, "seed for the fault plan's schedule (default: -seed)")
	check := fs.Bool("check", false, "run the invariant-checker suite alongside every figure")
	traceOut := fs.String("trace", "", "record an event trace of every client to this file")
	traceFormat := fs.String("trace-format", "jsonl", "trace file format: jsonl or chrome (Perfetto-loadable)")
	traceSummary := fs.Bool("trace-summary", false, "append a per-discipline collision/backoff accounting table")
	traceQuantiles := fs.Bool("trace-quantiles", false, "append a per-discipline span-distribution table (P50/P95/P99)")
	metricsOut := fs.String("metrics", "", "sample the flight recorder on the backend clock and dump it to this file")
	metricsInterval := fs.Duration("metrics-interval", 0, "virtual-time sampling interval for -metrics (0 = default "+expt.DefaultObsInterval.String()+")")
	metricsFormat := fs.String("metrics-format", "jsonl", "metrics dump format: jsonl, csv, or prom")
	obsAddr := fs.String("obs-addr", "", "live or gridd backend: serve /metrics, /healthz, and pprof on this address during the run")
	griddAddr := fs.String("gridd-addr", "", "gridd backend only: base URL of a running gridd daemon (empty spawns one in-process)")
	progress := fs.Bool("progress", false, "print one-line sweep progress to stderr about once a second")
	parallel := fs.Int("parallel", 0, "worker count for independent simulation cells (0 = GOMAXPROCS, 1 = serial)")
	shards := fs.Int("shards", 0, "engine scheduling shards for the scale figure (power of two; 0 or 1 = unsharded)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := fs.String("memprofile", "", "write a heap profile at the end of the run to this file")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	if *format != "table" && *format != "tsv" {
		fmt.Fprintf(stderr, "gridbench: unknown format %q (want table or tsv)\n", *format)
		return 2
	}
	if *traceFormat != "jsonl" && *traceFormat != "chrome" {
		fmt.Fprintf(stderr, "gridbench: unknown trace format %q (want jsonl or chrome)\n", *traceFormat)
		return 2
	}
	if !expt.KnownBackend(*backend) {
		fmt.Fprintf(stderr, "gridbench: unknown backend %q (want %s)\n", *backend, strings.Join(expt.Backends(), ", "))
		return 2
	}
	if *timescale < 0 {
		fmt.Fprintf(stderr, "gridbench: negative timescale %v (want > 0, or 0 for the default)\n", *timescale)
		return 2
	}
	if *parallel < 0 {
		fmt.Fprintf(stderr, "gridbench: negative parallel %d (want 0 for GOMAXPROCS, or a worker count)\n", *parallel)
		return 2
	}
	if *shards < 0 || (*shards > 1 && *shards&(*shards-1) != 0) {
		fmt.Fprintf(stderr, "gridbench: invalid shards %d (want a power of two, or 0 for unsharded)\n", *shards)
		return 2
	}
	if *fig == "scale" && *backend == expt.BackendLive {
		fmt.Fprintf(stderr, "gridbench: -fig scale is sim-only (a million wall-clock timers is a load test, not a measurement)\n")
		return 2
	}
	if *metricsFormat != "jsonl" && *metricsFormat != "csv" && *metricsFormat != "prom" {
		fmt.Fprintf(stderr, "gridbench: unknown metrics format %q (want jsonl, csv, or prom)\n", *metricsFormat)
		return 2
	}
	if *metricsInterval < 0 {
		fmt.Fprintf(stderr, "gridbench: negative metrics interval %v\n", *metricsInterval)
		return 2
	}
	if *obsAddr != "" && *backend == expt.BackendSim {
		fmt.Fprintf(stderr, "gridbench: -obs-addr needs a wall-clock backend (the sim backend finishes in virtual time; dump it with -metrics instead)\n")
		return 2
	}
	if *backend == expt.BackendGridd && *fig != "gridd" {
		fmt.Fprintf(stderr, "gridbench: -backend=gridd serves only -fig gridd, the wire-protocol conformance checklist (the scenario differentials against a daemon run in internal/expt's TestDiffGridd* suite)\n")
		return 2
	}
	if *fig == "gridd" && *backend != expt.BackendGridd {
		fmt.Fprintf(stderr, "gridbench: -fig gridd needs -backend=gridd (it proves the wire protocol, not a simulation)\n")
		return 2
	}
	if *griddAddr != "" && *backend != expt.BackendGridd {
		fmt.Fprintf(stderr, "gridbench: -gridd-addr needs -backend=gridd\n")
		return 2
	}
	r := &renderer{w: stdout, stderr: stderr, tsv: *format == "tsv"}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "gridbench: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "gridbench: %v\n", err)
			f.Close()
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "gridbench: %v\n", err)
				return
			}
			runtime.GC() // report live allocations, not GC noise
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "gridbench: %v\n", err)
			}
			f.Close()
		}()
	}

	opt := expt.Options{Seed: *seed, Scale: *scale, Parallel: *parallel, Shards: *shards, Backend: *backend, Timescale: *timescale, GriddURL: *griddAddr}
	if *metricsOut != "" || *obsAddr != "" || *progress {
		// -progress needs the recorder too: the events/sec column comes
		// from the engine event counters it samples.
		opt.Obs = obs.New()
		opt.ObsInterval = *metricsInterval
	}
	if *progress {
		opt.Progress = progressPrinter(stderr)
	}
	if *obsAddr != "" {
		srv, err := obs.Serve(*obsAddr, opt.Obs, func() map[string]string {
			return map[string]string{"backend": *backend, "seed": fmt.Sprint(*seed)}
		})
		if err != nil {
			fmt.Fprintf(stderr, "gridbench: %v\n", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "gridbench: observability endpoint on http://%s (/metrics, /healthz, /debug/pprof/)\n", srv.Addr())
	}
	if *chaosName != "" {
		cs := *chaosSeed
		if cs == 0 {
			cs = *seed
		}
		plan, err := chaos.Preset(*chaosName, cs)
		if err != nil {
			fmt.Fprintf(stderr, "gridbench: %v\n", err)
			return 2
		}
		opt.Chaos = plan
		r.chaos = fmt.Sprintf("# chaos: plan %s, seed %d\n", plan.Name, plan.Seed)
	}
	if *check {
		opt.Check = &chaos.Recorder{}
	}
	figs := []string{"1", "2", "3", "4", "5", "6", "7", "la", "res", "net"}
	if *fig != "" {
		switch *fig {
		case "1", "2", "3", "4", "5", "6", "7", "la", "res", "net", "scale", "gridd":
			figs = []string{*fig}
		default:
			fmt.Fprintf(stderr, "gridbench: no such figure %s (the paper has Figures 1-7; \"la\" is the limited-allocation ablation, \"res\" the reservation ablation, \"net\" the unreliable-channel ablation, \"scale\" the million-client engine sweep, \"gridd\" the wire-protocol conformance checklist)\n", *fig)
			return 2
		}
	}

	if *traceOut != "" || *traceSummary || *traceQuantiles {
		opt.Trace = trace.New()
		scenario := "all"
		if *fig != "" {
			scenario = "fig" + *fig
		}
		m := trace.Meta{Seed: *seed, Scenario: scenario}
		if opt.Chaos != nil {
			m.Plan, m.PlanSeed = opt.Chaos.Name, opt.Chaos.Seed
		}
		opt.Trace.SetMeta(m)
	}

	var bufferSweep *expt.BufferSweep // figures 4 and 5 share one run
	for _, f := range figs {
		start := time.Now()
		switch f {
		case "1":
			r.header("1", "Scalability of Job Submission", "jobs submitted in 5 minutes vs number of submitters")
			r.dump(expt.Fig1(opt))
		case "2":
			r.header("2", "Timeline of Aloha Submitter", "available FDs and cumulative jobs, 400 clients, 30 minutes")
			tl := expt.Fig2(opt)
			r.dump(tl.Table())
			fmt.Fprintf(r.w, "# schedd crashes: %d\n", tl.Crashes)
		case "3":
			r.header("3", "Timeline of Ethernet Submitter", "available FDs and cumulative jobs, 400 clients, 30 minutes")
			tl := expt.Fig3(opt)
			r.dump(tl.Table())
			fmt.Fprintf(r.w, "# schedd crashes: %d\n", tl.Crashes)
		case "4":
			r.header("4", "Buffer Throughput", "total files consumed vs number of producers")
			if bufferSweep == nil {
				bufferSweep = expt.RunBufferSweep(opt)
			}
			r.dump(bufferSweep.Consumed)
		case "5":
			r.header("5", "Buffer Collisions", "total write collisions vs number of producers")
			if bufferSweep == nil {
				bufferSweep = expt.RunBufferSweep(opt)
			}
			r.dump(bufferSweep.Collisions)
		case "6":
			r.header("6", "Aloha File Reader", "cumulative transfers and collisions over 900 seconds")
			tl := expt.Fig6(opt)
			r.dump(tl.Table())
			fmt.Fprintf(r.w, "# totals: transfers=%d collisions=%d\n", tl.TotalTransfers, tl.TotalCollisions)
		case "7":
			r.header("7", "Ethernet File Reader", "cumulative transfers and deferrals over 900 seconds")
			tl := expt.Fig7(opt)
			r.dump(tl.Table())
			fmt.Fprintf(r.w, "# totals: transfers=%d deferrals=%d\n", tl.TotalTransfers, tl.TotalDeferrals)
		case "la":
			r.header("LA", "Limited Allocation Ablation", "Ethernet submitters under stuck-holder chaos, leased vs unleased FD tenure")
			la := expt.FigLA(opt)
			r.dump(la.Throughput)
			fmt.Fprintf(r.w, "# fairness: Jain's index x100, watchdog revocations, starvation excursions, longest unleased wait\n")
			r.dump(la.Fairness)
		case "res":
			r.header("RES", "Reservation Ablation", "admission-booked vs leased Ethernet submitters, fault-free and under res-flap chaos")
			ra := expt.FigRes(opt)
			r.dump(ra.Throughput)
			fmt.Fprintf(r.w, "# admission: book rejections (steady/flap), dead windows and lapses under flap, Ethernet flap crashes\n")
			r.dump(ra.Admission)
		case "net":
			r.header("NET", "Unreliable Channel Ablation", "fenced vs unfenced submitters under dup-storm and part-flap channel chaos")
			na := expt.FigNet(opt)
			r.dump(na.Throughput)
			fmt.Fprintf(r.w, "# integrity: phantom jobs and double-allocations (unfenced arms); fence rejections and deduplicated retries (fenced arms)\n")
			r.dump(na.Integrity)
			fmt.Fprintf(r.w, "# channel: submit-path request drops, lease-wire drops/dups, watchdog revocations (fenced arms)\n")
			r.dump(na.Channel)
		case "gridd":
			r.header("GRIDD", "Wire-Protocol Conformance", "carrier sense, fenced leases, watchdog revocation, and admission booking over a real HTTP socket")
			url, stop, err := opt.GriddDaemon()
			if err != nil {
				fmt.Fprintf(stderr, "gridbench: %v\n", err)
				return 1
			}
			cerr := expt.GriddConformance(url, r.w)
			stop()
			if cerr != nil {
				fmt.Fprintf(stderr, "gridbench: conformance: %v\n", cerr)
				return 1
			}
		case "scale":
			r.header("SCALE", "Million-Client Engine Sweep", "lightweight Ethernet clients on shared carrier, 60 virtual seconds, engine-throughput benchmark")
			sc := expt.FigScale(opt)
			r.dump(sc.Table)
			for _, c := range sc.Cells {
				fmt.Fprintf(r.w, "# timing: n=%d wall=%v events/s=%.0f\n",
					c.Clients, c.Wall.Round(time.Millisecond), c.EventsPerSec())
			}
		}
		// Single-discipline figures: re-run the other disciplines into
		// the same trace so the summary compares all three on one seed.
		expt.TraceCompanions(opt, f)
		fmt.Fprintf(r.w, "# generated in %v\n\n", time.Since(start).Round(time.Millisecond))
	}
	if opt.Check != nil {
		if opt.Check.Ok() {
			fmt.Fprintf(r.w, "# invariants: ok\n")
		} else {
			fmt.Fprintf(stderr, "gridbench: %v\n", opt.Check.Err())
			return 1
		}
	}
	if *traceSummary || *traceQuantiles {
		sums := trace.Analyze(opt.Trace)
		if *traceSummary {
			fmt.Fprintf(r.w, "==== Trace summary ====\n")
			if r.chaos != "" {
				io.WriteString(r.w, r.chaos)
			}
			if err := trace.WriteSummary(r.w, sums); err != nil {
				fmt.Fprintf(stderr, "gridbench: %v\n", err)
				return 1
			}
		}
		if *traceQuantiles {
			fmt.Fprintf(r.w, "==== Trace quantiles ====\n")
			if r.chaos != "" {
				io.WriteString(r.w, r.chaos)
			}
			if err := trace.WriteQuantiles(r.w, sums); err != nil {
				fmt.Fprintf(stderr, "gridbench: %v\n", err)
				return 1
			}
		}
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, *traceFormat, opt.Trace); err != nil {
			fmt.Fprintf(stderr, "gridbench: %v\n", err)
			return 1
		}
	}
	if *metricsOut != "" {
		if err := writeMetrics(*metricsOut, *metricsFormat, opt.Obs); err != nil {
			fmt.Fprintf(stderr, "gridbench: %v\n", err)
			return 1
		}
	}
	return r.exit
}

// progressPrinter returns an expt.Options.Progress callback that
// prints a one-line sweep report to w: cells done, sampled engine
// events per wall-clock second, and a completion-rate ETA. Reports are
// throttled to about one a second, except each sweep's final cell.
// The callback is invoked from worker goroutines, so it serializes
// behind its own mutex.
func progressPrinter(w io.Writer) func(done, total int, events int64) {
	var mu sync.Mutex
	var start, last time.Time
	lastDone := 0
	return func(done, total int, events int64) {
		mu.Lock()
		defer mu.Unlock()
		now := time.Now()
		if start.IsZero() || done < lastDone {
			start = now // first cell of a new sweep
			last = time.Time{}
		}
		lastDone = done
		if done < total && now.Sub(last) < time.Second {
			return
		}
		last = now
		elapsed := now.Sub(start)
		if elapsed <= 0 {
			elapsed = time.Millisecond
		}
		perCell := elapsed / time.Duration(done)
		eta := time.Duration(total-done) * perCell
		fmt.Fprintf(w, "gridbench: %d/%d cells, %.3g events/s, eta %s\n",
			done, total, float64(events)/elapsed.Seconds(), eta.Round(time.Second))
	}
}

// writeMetrics exports the flight-recorder registry to path in the
// chosen format.
func writeMetrics(path, format string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	switch format {
	case "csv":
		err = reg.WriteCSV(f)
	case "prom":
		err = reg.WriteProm(f)
	default:
		err = reg.WriteJSONL(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeTrace exports the recorded trace to path in the chosen format.
func writeTrace(path, format string, t *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if format == "chrome" {
		err = t.WriteChrome(f)
	} else {
		err = t.WriteJSONL(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// renderer writes figure banners and tables in the selected format.
type renderer struct {
	w      io.Writer
	stderr io.Writer
	tsv    bool
	chaos  string // banner line naming the armed fault plan, if any
	exit   int
}

// header prints a figure banner.
func (r *renderer) header(label, title, sub string) {
	fmt.Fprintf(r.w, "==== Figure %s: %s ====\n", label, title)
	fmt.Fprintf(r.w, "# %s\n", sub)
	if r.chaos != "" {
		io.WriteString(r.w, r.chaos)
	}
}

// tsvWriterTo is satisfied by the metrics tables.
type tsvWriterTo interface {
	WriteTSVTo(w io.Writer) (int64, error)
}

// dump renders any table-like value in the selected format.
func (r *renderer) dump(t io.WriterTo) {
	var err error
	if tv, ok := t.(tsvWriterTo); ok && r.tsv {
		_, err = tv.WriteTSVTo(r.w)
	} else {
		_, err = t.WriteTo(r.w)
	}
	if err != nil {
		fmt.Fprintf(r.stderr, "gridbench: %v\n", err)
		r.exit = 1
	}
}
