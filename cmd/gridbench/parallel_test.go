package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// figsAll lists every figure the CLI can regenerate.
var figsAll = []string{"1", "2", "3", "4", "5", "6", "7", "la", "res", "net", "scale"}

// TestParallelDeterminism is the acceptance check for the parallel
// sweep runner: for every figure and three distinct seeds, the full
// CLI output (tables, banners, totals), the trace summary, and the
// flight-recorder metrics dump at -parallel 8 must be byte-identical
// to the forced-serial run.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every figure at two parallelism levels and three seeds")
	}
	for _, seed := range []string{"1", "7", "42"} {
		for _, fig := range figsAll {
			fig := fig
			t.Run(fmt.Sprintf("fig%s/seed%s", fig, seed), func(t *testing.T) {
				dir := t.TempDir()
				m1 := filepath.Join(dir, "serial.jsonl")
				m8 := filepath.Join(dir, "parallel.jsonl")
				args := []string{"-fig", fig, "-scale", "0.1", "-seed", seed, "-trace-summary", "-check"}
				c1, serial, e1 := cli(t, append(args, "-parallel", "1", "-metrics", m1)...)
				c8, par, e8 := cli(t, append(args, "-parallel", "8", "-metrics", m8)...)
				if c1 != 0 || c8 != 0 {
					t.Fatalf("codes %d/%d stderr %q %q", c1, c8, e1, e8)
				}
				if stripTiming(serial) != stripTiming(par) {
					t.Errorf("-parallel 8 output drifted from -parallel 1.\nserial:\n%s\nparallel:\n%s",
						stripTiming(serial), stripTiming(par))
				}
				b1, err := os.ReadFile(m1)
				if err != nil {
					t.Fatal(err)
				}
				b8, err := os.ReadFile(m8)
				if err != nil {
					t.Fatal(err)
				}
				if len(b1) == 0 {
					t.Error("serial metrics dump is empty")
				}
				if !bytes.Equal(b1, b8) {
					t.Errorf("-parallel 8 metrics dump drifted from -parallel 1 (%d vs %d bytes)", len(b1), len(b8))
				}
			})
		}
	}
}

// TestProfileFlags smoke-tests -cpuprofile and -memprofile: the run
// must succeed and leave non-empty pprof files behind.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	code, _, errOut := cli(t, "-fig", "1", "-scale", "0.1", "-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("code=%d stderr=%q", code, errOut)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}
