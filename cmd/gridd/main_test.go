package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/gridd"
	"repro/internal/griddclient"
)

func TestParseSpec(t *testing.T) {
	rc, err := parseSpec("fds:96:300ms")
	if err != nil || rc.Name != "fds" || rc.Capacity != 96 || rc.Quantum != 300*time.Millisecond {
		t.Fatalf("parseSpec = %+v, %v", rc, err)
	}
	rc, err = parseSpec("pool:4:unfenced")
	if err != nil || !rc.Unfenced || rc.Quantum != 0 {
		t.Fatalf("unfenced spec = %+v, %v", rc, err)
	}
	for _, bad := range []string{"", "fds", "fds:zero", ":4", "fds:-1", "fds:4:bogus"} {
		if _, err := parseSpec(bad); err == nil {
			t.Fatalf("parseSpec(%q) accepted", bad)
		}
	}
}

func TestBadFlagsExit2(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := run([]string{"-res", "nonsense"}, &out, &errb, nil); rc != 2 {
		t.Fatalf("bad -res exit = %d; want 2", rc)
	}
	if rc := run([]string{"-no-such-flag"}, &out, &errb, nil); rc != 2 {
		t.Fatalf("bad flag exit = %d; want 2", rc)
	}
}

// TestSIGTERMDrainsMidFlight is the graceful-shutdown contract end to
// end: a daemon with a lease in flight gets SIGTERM, refuses new
// acquires with the typed retriable error, gives the holder the drain
// budget, then force-revokes and exits 0.
func TestSIGTERMDrainsMidFlight(t *testing.T) {
	ready := make(chan string, 1)
	var out, errb bytes.Buffer
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-drain", "150ms", "-res", "fds:2:1h"}, &out, &errb, ready)
	}()
	var url string
	select {
	case url = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatalf("daemon never bound its listener")
	}

	c := griddclient.New(url, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Acquire(ctx, gridd.AcquireRequest{Resource: "fds", Holder: "wedged", Units: 1}); err != nil {
		t.Fatalf("acquire: %v", err)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	// While draining, the listener still answers — with the typed
	// retriable verdict, not a connection error.
	deadline := time.Now().Add(2 * time.Second)
	sawDraining := false
	for time.Now().Before(deadline) && !sawDraining {
		_, err := c.Acquire(ctx, gridd.AcquireRequest{Resource: "fds", Holder: "late", Units: 1})
		var ue *griddclient.UnavailableError
		if errors.As(err, &ue) && ue.Reason == "draining" {
			sawDraining = true
		}
		time.Sleep(5 * time.Millisecond)
	}

	var rc int
	select {
	case rc = <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon never exited after SIGTERM")
	}
	if rc != 0 {
		t.Fatalf("exit code %d; want 0\nstderr: %s", rc, errb.String())
	}
	if !sawDraining {
		t.Fatalf("never observed the draining verdict before exit\nstdout: %s", out.String())
	}
	log := out.String()
	for _, want := range []string{"draining", "drain revoked fds lease", "drained, 1 revoked"} {
		if !strings.Contains(log, want) {
			t.Fatalf("stdout missing %q:\n%s", want, log)
		}
	}
}
