// Command gridd is the networked service backend: a standalone HTTP
// daemon hosting the paper's contended resources — the schedd FD
// table, fsbuffer occupancy, replica service lanes — behind the wire
// protocol in internal/gridd, so discipline clients (gridbench
// -backend=gridd, internal/griddclient) contend over a real socket.
//
// SIGTERM or SIGINT begins a graceful drain: new acquires and
// reservations are refused with a typed retriable error, in-flight
// grants get -drain of wall time to land their releases, and whatever
// remains is revoked in (deadline, seq) order before the process
// exits — the same order the live engine fires leftover watchdogs in.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/gridd"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// resSpecs collects repeatable -res flags.
type resSpecs []string

func (r *resSpecs) String() string     { return strings.Join(*r, ",") }
func (r *resSpecs) Set(s string) error { *r = append(*r, s); return nil }

// parseSpec reads one -res value: name:capacity[:quantum][:unfenced].
func parseSpec(spec string) (gridd.ResourceConfig, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 {
		return gridd.ResourceConfig{}, fmt.Errorf("res spec %q: want name:capacity[:quantum][:unfenced]", spec)
	}
	rc := gridd.ResourceConfig{Name: parts[0]}
	if rc.Name == "" {
		return rc, fmt.Errorf("res spec %q: empty name", spec)
	}
	cap, err := strconv.ParseInt(parts[1], 10, 64)
	if err != nil || cap <= 0 {
		return rc, fmt.Errorf("res spec %q: bad capacity %q", spec, parts[1])
	}
	rc.Capacity = cap
	for _, p := range parts[2:] {
		if p == "unfenced" {
			rc.Unfenced = true
			continue
		}
		d, err := time.ParseDuration(p)
		if err != nil {
			return rc, fmt.Errorf("res spec %q: bad field %q", spec, p)
		}
		rc.Quantum = d
	}
	return rc, nil
}

// defaultResources is the paper's resource set: the schedd FD table
// (with the housekeeping loop whose starvation is the broadcast jam),
// fsbuffer occupancy, and the three single-lane replica services.
func defaultResources() []gridd.ResourceConfig {
	return []gridd.ResourceConfig{
		{
			Name:              "fds",
			Capacity:          96,
			Quantum:           30 * time.Second,
			HousekeepUnits:    16,
			HousekeepInterval: 5 * time.Second,
			RestartDelay:      10 * time.Second,
			CrashHolder:       "schedd",
		},
		{Name: "buffer", Capacity: 40, Quantum: 30 * time.Second},
		{Name: "xxx", Capacity: 1, Quantum: 30 * time.Second},
		{Name: "yyy", Capacity: 1, Quantum: 30 * time.Second},
		{Name: "zzz", Capacity: 1, Quantum: 30 * time.Second},
	}
}

// run is main minus the exit call, testable in-process. When ready is
// non-nil the daemon's base URL is sent once the listener is bound.
func run(argv []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("gridd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:9123", "listen address (host:port; port 0 picks a free one)")
	drain := fs.Duration("drain", 5*time.Second, "graceful-shutdown budget for in-flight grants")
	var specs resSpecs
	fs.Var(&specs, "res", "resource spec name:capacity[:quantum][:unfenced] (repeatable; default: the paper set)")
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	var cfg gridd.Config
	if len(specs) == 0 {
		cfg.Resources = defaultResources()
	}
	for _, spec := range specs {
		rc, err := parseSpec(spec)
		if err != nil {
			fmt.Fprintf(stderr, "gridd: %v\n", err)
			return 2
		}
		cfg.Resources = append(cfg.Resources, rc)
	}

	srv := gridd.NewServer(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "gridd: %v\n", err)
		return 1
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(stdout, "gridd: listening on http://%s (%d resources)\n", ln.Addr(), len(cfg.Resources))
	if ready != nil {
		ready <- "http://" + ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sigc)

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(stderr, "gridd: %v\n", err)
			return 1
		}
		return 0
	case sig := <-sigc:
		fmt.Fprintf(stdout, "gridd: %v: draining (budget %v)\n", sig, *drain)
	}

	// Drain order matters: the resource layer starts refusing new work
	// with the typed retriable verdict while the listener still
	// answers, so in-flight holders can land their releases; only then
	// does the HTTP server close.
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	recs := srv.Shutdown(ctx)
	cancel()
	for _, r := range recs {
		fmt.Fprintf(stdout, "gridd: drain revoked %s lease %d (holder %s)\n", r.Resource, r.LeaseID, r.Holder)
	}
	hctx, hcancel := context.WithTimeout(context.Background(), time.Second)
	_ = hs.Shutdown(hctx)
	hcancel()
	fmt.Fprintf(stdout, "gridd: drained, %d revoked\n", len(recs))
	return 0
}
