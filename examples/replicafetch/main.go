// Replicafetch: the §5 "black hole" scenario as an ftsh script. Three
// web servers replicate a 100 MB read-only file; one of them accepts
// connections but never sends a byte. The Aloha reader pays the full
// 60-second timeout every time it lands on the black hole; the Ethernet
// reader first fetches a one-byte flag file under a 5-second budget and
// diverts cheaply. Both scripts below are the paper's, executed by the
// interpreter against the simulated servers in virtual time.
//
// Run with: go run ./examples/replicafetch
package main

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ftsh/interp"
	"repro/internal/proc"
	"repro/internal/replica"
	"repro/internal/sim"
)

const alohaScript = `
try for 900 seconds
  forany host in xxx yyy zzz
    try for 60 seconds
      wget http://${host}/data
    end
  end
end
echo fetched data from ${host}
`

const ethernetScript = `
try for 900 seconds
  forany host in xxx yyy zzz
    try for 5 seconds
      wget http://${host}/flag
    end
    try for 60 seconds
      wget http://${host}/data
    end
  end
end
echo fetched data from ${host}
`

func main() {
	for _, c := range []struct{ name, script string }{
		{"Aloha", alohaScript},
		{"Ethernet", ethernetScript},
	} {
		out, elapsed := run(c.script)
		fmt.Printf("%-9s %-28s (took %v of virtual time)\n", c.name, strings.TrimSpace(out), elapsed)
	}
}

// run executes one reader script against three simulated servers, the
// first of which is a black hole, and reports the script's output and
// elapsed virtual time.
func run(script string) (string, time.Duration) {
	e := sim.New(5)
	cfg := replica.Config{}
	servers := map[string]*replica.Server{
		"xxx": replica.NewServer(e.RT(), "xxx", true, cfg), // black hole
		"yyy": replica.NewServer(e.RT(), "yyy", false, cfg),
		"zzz": replica.NewServer(e.RT(), "zzz", false, cfg),
	}

	runner := proc.NewMapRunner()
	runner.Register("wget", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		// Parse http://HOST/PATH.
		url := strings.TrimPrefix(cmd.Args[len(cmd.Args)-1], "http://")
		host, path, _ := strings.Cut(url, "/")
		srv, ok := servers[host]
		if !ok {
			return fmt.Errorf("wget: unknown host %q", host)
		}
		if path == "flag" {
			return srv.FetchFlag(rt.(*sim.Proc), ctx)
		}
		return srv.FetchData(rt.(*sim.Proc), ctx)
	})

	var out strings.Builder
	e.Spawn("reader", func(p *sim.Proc) {
		in := interp.New(interp.Config{Runner: runner, Runtime: p, Stdout: &out})
		if err := in.RunSource(e.Context(), script); err != nil {
			fmt.Fprintf(&out, "script failed: %v", err)
		}
	})
	if err := e.Run(); err != nil {
		panic(err)
	}
	return out.String(), e.Elapsed().Round(time.Millisecond)
}
