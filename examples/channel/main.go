// Channel: the discipline validated against its namesake — a shared
// broadcast medium where overlapping transmissions destroy each other
// (Metcalfe & Boggs 1976). Thirty stations offer heavy load for ten
// virtual seconds under each discipline.
//
// Expected shapes: Fixed recreates the pure-collision catastrophe;
// Aloha's randomized backoff recovers some goodput (the original
// ALOHA network saturated at 18 % of capacity, §3); Ethernet's carrier
// sense eliminates collisions entirely.
//
// Run with: go run ./examples/channel
package main

import (
	"fmt"
	"time"

	"repro/internal/channel"
	"repro/internal/core"
)

func main() {
	fmt.Println("30 stations, 1 ms frames, 10 virtual seconds of offered overload:")
	fmt.Printf("%-10s %10s %12s %13s\n", "discipline", "delivered", "collisions", "utilization")
	for _, d := range []core.Discipline{core.Ethernet, core.Aloha, core.Fixed} {
		cfg := channel.DefaultStationConfig(d)
		ch := channel.RunStations(11, 30, 10*time.Second, cfg)
		fmt.Printf("%-10s %10d %12d %12.0f%%\n",
			d, ch.Successes, ch.Collisions, 100*ch.Utilization())
	}
}
