// Databuffer: the §5 producer/consumer scenario — remote jobs write
// output files of unknown size into a 120 MB shared filesystem buffer
// while a consumer drains completed files to an archive at 1 MB/s.
//
// Thirty producers of each discipline run for ten virtual minutes. The
// Fixed producers retry ENOSPC instantly and mob the file server; the
// Aloha producers back off; the Ethernet producers first estimate
// effective free space (free minus the expected growth of incomplete
// files) and defer while the estimate leaves no room.
//
// Run with: go run ./examples/databuffer
package main

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fsbuffer"
	"repro/internal/sim"
)

func main() {
	fmt.Println("30 producers, 120 MB buffer, 10 virtual minutes:")
	fmt.Printf("%-10s %10s %12s %12s %14s\n",
		"discipline", "consumed", "completed", "collisions", "MB archived")
	for _, d := range []core.Discipline{core.Ethernet, core.Aloha, core.Fixed} {
		b := run(d)
		fmt.Printf("%-10s %10d %12d %12d %14.1f\n",
			d, b.Consumed, b.Completed, b.Collisions,
			float64(b.BytesConsumed)/float64(fsbuffer.MB))
	}
}

// run drives one discipline's producer population against a fresh
// buffer and returns the buffer for inspection.
func run(d core.Discipline) *fsbuffer.Buffer {
	e := sim.New(21)
	b := fsbuffer.New(e.RT(), fsbuffer.Config{})
	ctx, cancel := e.WithTimeout(e.Context(), 10*time.Minute)
	defer cancel()
	e.Spawn("consumer", func(p *sim.Proc) { b.Consumer(p, ctx) })
	for i := 0; i < 30; i++ {
		i := i
		e.Spawn("producer", func(p *sim.Proc) {
			var pr fsbuffer.Producer
			pr.Loop(p, ctx, b, i, fsbuffer.DefaultProducerConfig(d))
		})
	}
	if err := e.Run(); err != nil {
		panic(err)
	}
	return b
}
