// Jobsubmit: the paper's §5 submitter scripts, verbatim, executed by the
// ftsh interpreter against the simulated Condor cluster in virtual time.
//
// One hundred clients run the Aloha script, then one hundred run the Ethernet
// script against a deliberately small FD table, for ten virtual minutes
// each. The Ethernet script is the paper's:
//
//	try for 5 minutes
//	  cut -f2 /proc/sys/fs/file-nr -> n
//	  if ${n} .lt. 1000
//	    failure
//	  else
//	    condor_submit submit.job
//	  end
//	end
//
// Run with: go run ./examples/jobsubmit
package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/condor"
	"repro/internal/core"
	"repro/internal/ftsh/interp"
	"repro/internal/proc"
	"repro/internal/sim"
)

const alohaScript = `
while true
  try for 5 minutes
    condor_submit submit.job
  end
end
`

const ethernetScript = `
while true
  try for 5 minutes
    cut -f2 /proc/sys/fs/file-nr -> n
    if ${n} .lt. 1000
      failure
    else
      condor_submit submit.job
    end
  end
end
`

func main() {
	for _, c := range []struct{ name, script string }{
		{"Aloha", alohaScript},
		{"Ethernet", ethernetScript},
	} {
		jobs, crashes := run(c.script)
		fmt.Printf("%-9s 100 clients, 10 virtual minutes: jobs=%-5d schedd crashes=%d\n",
			c.name, jobs, crashes)
	}
}

// run executes the given client script in 100 simulated processes against
// one cluster and reports total jobs and schedd crashes.
func run(script string) (jobs, crashes int64) {
	e := sim.New(7)
	// A small FD table so 100 clients are enough to saturate it; the
	// script's 1000-FD threshold stays the same as the paper's.
	cl := condor.NewCluster(e.RT(), condor.Config{FDCapacity: 1600})
	ctx, cancel := e.WithTimeout(e.Context(), 10*time.Minute)
	defer cancel()
	cl.StartHousekeeping(ctx)

	// Expose the cluster to scripts as external commands.
	runner := proc.NewMapRunner()
	runner.Register("condor_submit", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		return cl.Schedd.Submit(rt.(*sim.Proc), ctx)
	})
	runner.Register("cut", func(ctx context.Context, rt core.Runtime, cmd *interp.Command) error {
		// The paper reads /proc/sys/fs/file-nr; our kernel is the
		// simulated FD table.
		fmt.Fprintln(cmd.Stdout, cl.FDs.Free())
		return nil
	})

	for i := 0; i < 100; i++ {
		e.Spawn("client", func(p *sim.Proc) {
			in := interp.New(interp.Config{Runner: runner, Runtime: p})
			_ = in.RunSource(ctx, script)
		})
	}
	if err := e.Run(); err != nil {
		panic(err)
	}
	return cl.Schedd.Jobs, cl.Schedd.Crashes
}
