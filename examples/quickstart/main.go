// Quickstart: the Ethernet discipline as a library, on the real clock.
//
// A flaky "service" fails most of the time while it is overloaded. A
// plain loop would hammer it; core.Try backs off exponentially with a
// random factor (§4 of the paper), and a carrier-sense hook skips
// attempts entirely while the service advertises overload.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
)

func main() {
	rt := core.NewReal(1)

	// A service that is overloaded for the first 300 ms of its life.
	start := time.Now()
	overloaded := func() bool { return time.Since(start) < 300*time.Millisecond }
	calls := 0
	fetch := func(ctx context.Context) error {
		calls++
		if overloaded() {
			return core.Collision("service", errors.New("503 overloaded"))
		}
		return nil
	}

	// Scale the paper's 1s-base backoff down so the demo runs in under
	// a second; the doubling and the [1,2) random factor are identical.
	backoff := &core.Backoff{
		Base: 20 * time.Millisecond, Cap: 200 * time.Millisecond,
		Factor: 2, RandMin: 1, RandMax: 2,
	}

	// 1. Aloha: try with exponential backoff — `try for 5 seconds`.
	err := core.Try(context.Background(), rt, core.For(5*time.Second),
		core.TryConfig{Backoff: backoff}, fetch)
	fmt.Printf("aloha:    err=%v attempts=%d elapsed=%v\n", err, calls, time.Since(start).Round(time.Millisecond))

	// 2. Ethernet: the same, plus carrier sense — skip attempts while
	// the service is visibly busy, without consuming it.
	start, calls = time.Now(), 0
	defers := 0
	obs := core.ObserverFunc(func(ev core.Event, at time.Time, detail error) {
		if ev == core.EvDefer {
			defers++
		}
	})
	client := &core.Client{
		Rt:         rt,
		Discipline: core.Ethernet,
		Limit:      core.For(5 * time.Second),
		Backoff:    backoff,
		Observer:   obs,
		Sense: func(ctx context.Context) error {
			if overloaded() {
				return core.Deferred("service")
			}
			return nil
		},
	}
	err = client.Do(context.Background(), fetch)
	fmt.Printf("ethernet: err=%v attempts=%d deferrals=%d elapsed=%v\n",
		err, calls, defers, time.Since(start).Round(time.Millisecond))

	// 3. Forany: alternation across replicas — the first healthy mirror
	// wins (`forany server in a b c`).
	winner, err := core.Forany(context.Background(), rt,
		[]string{"mirror-a", "mirror-b", "mirror-c"}, false,
		func(ctx context.Context, m string) error {
			if m == "mirror-b" {
				return nil
			}
			return core.ErrFailure
		})
	fmt.Printf("forany:   winner=%s err=%v\n", winner, err)

	// 4. Forall: parallel branches; one failure aborts the rest.
	err = core.Forall(context.Background(), rt, []string{"x", "y", "z"},
		func(ctx context.Context, rt core.Runtime, item string) error {
			if item == "y" {
				return fmt.Errorf("%s: %w", item, core.ErrFailure)
			}
			return rt.Sleep(ctx, time.Hour) // canceled by y's failure
		})
	fmt.Printf("forall:   err=%v\n", err)
}
