// Package repro's benchmarks regenerate every figure of the paper (at a
// reduced scale, so `go test -bench` stays fast) and run the ablations
// called out in DESIGN.md §6. Custom metrics carry the experimental
// quantities: jobs/op, crashes/op, transfers/op, collisions/op, and so
// on — the *shape* across benchmark variants is the result, not ns/op.
//
// Regenerate the full-scale figures with: go run ./cmd/gridbench
package repro

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/channel"
	"repro/internal/condor"
	"repro/internal/core"
	"repro/internal/expt"
	"repro/internal/fsbuffer"
	"repro/internal/ftsh/interp"
	"repro/internal/ftsh/lexer"
	"repro/internal/ftsh/parser"
	"repro/internal/metrics"
	"repro/internal/proc"
	"repro/internal/replica"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchScale shrinks populations and windows so each iteration is a few
// milliseconds; gridbench runs the full-size figures.
var benchScale = 0.25

// ---------------------------------------------------------------------
// One benchmark per paper figure.
// ---------------------------------------------------------------------

// BenchmarkFig1 regenerates Figure 1 (job-submission scalability) per
// discipline at the contended end of the sweep.
func BenchmarkFig1(b *testing.B) {
	window := time.Duration(benchScale * float64(expt.SubmitWindow))
	n := int(float64(475) * benchScale)
	clCfg := condor.Config{FDCapacity: int(float64(8192) * benchScale)}
	for _, d := range core.Disciplines {
		b.Run(d.String(), func(b *testing.B) {
			var jobs, crashes int64
			for i := 0; i < b.N; i++ {
				cfg := condor.DefaultSubmitterConfig(d)
				cfg.Threshold = int(float64(1000) * benchScale)
				j, c := expt.SubmitCell(int64(i+1), n, window, cfg, clCfg)
				jobs += j
				crashes += c
			}
			b.ReportMetric(float64(jobs)/float64(b.N), "jobs/op")
			b.ReportMetric(float64(crashes)/float64(b.N), "crashes/op")
		})
	}
}

// BenchmarkSweepParallel measures the parallel cell runner over the
// full Figure 1 sweep (36 independent cells at scale 0.1): wall-clock
// per sweep at increasing worker counts. Speedup is bounded by
// min(workers, cores); the jobs/op metric pins that every worker count
// computes the same sweep.
func BenchmarkSweepParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var jobs float64
			for i := 0; i < b.N; i++ {
				t := expt.Fig1(expt.Options{Scale: 0.1, Parallel: workers})
				for _, col := range t.Cols {
					for _, v := range col.Vals {
						jobs += v
					}
				}
			}
			b.ReportMetric(jobs/float64(b.N), "jobs/op")
		})
	}
}

// BenchmarkFig2 regenerates Figure 2 (Aloha submitter timeline).
func BenchmarkFig2(b *testing.B) {
	benchTimeline(b, core.Aloha)
}

// BenchmarkFig3 regenerates Figure 3 (Ethernet submitter timeline).
func BenchmarkFig3(b *testing.B) {
	benchTimeline(b, core.Ethernet)
}

func benchTimeline(b *testing.B, d core.Discipline) {
	var jobs, crashes float64
	for i := 0; i < b.N; i++ {
		var tl *expt.SubmitTimeline
		if d == core.Aloha {
			tl = expt.Fig2(expt.Options{Seed: int64(i + 1), Scale: benchScale})
		} else {
			tl = expt.Fig3(expt.Options{Seed: int64(i + 1), Scale: benchScale})
		}
		jobs += tl.Jobs.Last().V
		crashes += float64(tl.Crashes)
	}
	b.ReportMetric(jobs/float64(b.N), "jobs/op")
	b.ReportMetric(crashes/float64(b.N), "crashes/op")
}

// BenchmarkFig4 regenerates Figure 4 (buffer throughput) per discipline
// at the contended end of the producer sweep.
func BenchmarkFig4(b *testing.B) {
	benchBuffer(b, false)
}

// BenchmarkFig5 regenerates Figure 5 (buffer collisions).
func BenchmarkFig5(b *testing.B) {
	benchBuffer(b, true)
}

func benchBuffer(b *testing.B, collisions bool) {
	window := time.Duration(benchScale * float64(expt.BufferWindow))
	producers := 40
	for _, d := range core.Disciplines {
		b.Run(d.String(), func(b *testing.B) {
			var consumed, collided int64
			for i := 0; i < b.N; i++ {
				buf := runBufferCell(int64(i+1), d, producers, window)
				consumed += buf.Consumed
				collided += buf.Collisions
			}
			if collisions {
				b.ReportMetric(float64(collided)/float64(b.N), "collisions/op")
			} else {
				b.ReportMetric(float64(consumed)/float64(b.N), "consumed/op")
			}
		})
	}
}

// runBufferCell is a single (discipline, producers) buffer experiment.
func runBufferCell(seed int64, d core.Discipline, producers int, window time.Duration) *fsbuffer.Buffer {
	e := sim.New(seed)
	buf := fsbuffer.New(e.RT(), fsbuffer.Config{})
	ctx, cancel := e.WithTimeout(e.Context(), window)
	defer cancel()
	e.Spawn("consumer", func(p *sim.Proc) { buf.Consumer(p, ctx) })
	for j := 0; j < producers; j++ {
		j := j
		e.Spawn("producer", func(p *sim.Proc) {
			var pr fsbuffer.Producer
			pr.Loop(p, ctx, buf, j, fsbuffer.DefaultProducerConfig(d))
		})
	}
	if err := e.Run(); err != nil {
		panic(err)
	}
	return buf
}

// BenchmarkFig6 regenerates Figure 6 (Aloha file reader vs black hole).
func BenchmarkFig6(b *testing.B) {
	benchReaders(b, core.Aloha)
}

// BenchmarkFig7 regenerates Figure 7 (Ethernet file reader).
func BenchmarkFig7(b *testing.B) {
	benchReaders(b, core.Ethernet)
}

func benchReaders(b *testing.B, d core.Discipline) {
	var transfers, collisions, deferrals float64
	for i := 0; i < b.N; i++ {
		var tl *expt.ReaderTimeline
		if d == core.Aloha {
			tl = expt.Fig6(expt.Options{Seed: int64(i + 1)})
		} else {
			tl = expt.Fig7(expt.Options{Seed: int64(i + 1)})
		}
		transfers += float64(tl.TotalTransfers)
		collisions += float64(tl.TotalCollisions)
		deferrals += float64(tl.TotalDeferrals)
	}
	b.ReportMetric(transfers/float64(b.N), "transfers/op")
	b.ReportMetric(collisions/float64(b.N), "collisions/op")
	b.ReportMetric(deferrals/float64(b.N), "deferrals/op")
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §6).
// ---------------------------------------------------------------------

// BenchmarkAblationRandomFactor compares randomized backoff against an
// unrandomized one on a genuine shared-collision medium
// (internal/channel): without the random factor, stations that collide
// retry in lockstep and re-collide — §3's "cascading collisions". (On
// the FD-table scenario this effect does not appear, because FD
// acquisition is first-come-first-served rather than mutually
// destructive; the channel is the honest venue for this ablation.)
func BenchmarkAblationRandomFactor(b *testing.B) {
	window := 2 * time.Second
	for _, randomized := range []bool{true, false} {
		name := "randomized"
		if !randomized {
			name = "synchronized"
		}
		b.Run(name, func(b *testing.B) {
			var sent, collisions int64
			for i := 0; i < b.N; i++ {
				cfg := channel.DefaultStationConfig(core.Aloha)
				cfg.Backoff = &core.Backoff{
					Base: cfg.Frame, Cap: 1024 * cfg.Frame, Factor: 2,
					RandMin: 1, RandMax: 2,
				}
				if !randomized {
					cfg.Backoff.RandMax = 1
				}
				ch := channel.RunStations(int64(i+1), 30, window, cfg)
				sent += ch.Successes
				collisions += ch.Collisions
			}
			b.ReportMetric(float64(sent)/float64(b.N), "frames/op")
			b.ReportMetric(float64(collisions)/float64(b.N), "collisions/op")
		})
	}
}

// BenchmarkAblationBackoffCap sweeps the backoff cap. A tiny cap keeps
// clients hammering (more collisions); a huge cap strands them asleep
// (fewer jobs at moderate loss rates).
func BenchmarkAblationBackoffCap(b *testing.B) {
	window := time.Duration(benchScale * float64(expt.SubmitWindow))
	n := int(float64(475) * benchScale)
	clCfg := condor.Config{FDCapacity: int(float64(8192) * benchScale)}
	for _, cap := range []time.Duration{2 * time.Second, 16 * time.Second, time.Hour} {
		b.Run(fmt.Sprintf("cap=%v", cap), func(b *testing.B) {
			var jobs, crashes int64
			for i := 0; i < b.N; i++ {
				e := sim.New(int64(i + 1))
				cl := condor.NewCluster(e.RT(), clCfg)
				ctx, cancel := e.WithTimeout(e.Context(), window)
				cl.StartHousekeeping(ctx)
				for j := 0; j < n; j++ {
					e.Spawn("submitter", func(p *sim.Proc) {
						bo := core.NewBackoff(p.Rand)
						bo.Cap = cap
						client := &core.Client{Rt: p, Discipline: core.Aloha, Limit: core.For(5 * time.Minute), Backoff: bo}
						for ctx.Err() == nil {
							if err := client.Do(ctx, func(ctx context.Context) error {
								return cl.Schedd.Submit(p, ctx)
							}); err == nil {
								if p.Sleep(ctx, time.Second) != nil {
									return
								}
							}
						}
					})
				}
				if err := e.Run(); err != nil {
					panic(err)
				}
				cancel()
				jobs += cl.Schedd.Jobs
				crashes += cl.Schedd.Crashes
			}
			b.ReportMetric(float64(jobs)/float64(b.N), "jobs/op")
			b.ReportMetric(float64(crashes)/float64(b.N), "crashes/op")
		})
	}
}

// BenchmarkAblationThreshold sweeps the Ethernet submitter's carrier
// threshold: too low fails to prevent crashes, too high idles capacity.
func BenchmarkAblationThreshold(b *testing.B) {
	window := time.Duration(benchScale * float64(expt.SubmitWindow))
	n := int(float64(475) * benchScale)
	capFD := int(float64(8192) * benchScale)
	clCfg := condor.Config{FDCapacity: capFD}
	for _, frac := range []float64{0.01, 0.12, 0.99} {
		threshold := int(frac * float64(capFD))
		b.Run(fmt.Sprintf("threshold=%d", threshold), func(b *testing.B) {
			var jobs, crashes int64
			for i := 0; i < b.N; i++ {
				cfg := condor.DefaultSubmitterConfig(core.Ethernet)
				cfg.Threshold = threshold
				j, c := expt.SubmitCell(int64(i+1), n, window, cfg, clCfg)
				jobs += j
				crashes += c
			}
			b.ReportMetric(float64(jobs)/float64(b.N), "jobs/op")
			b.ReportMetric(float64(crashes)/float64(b.N), "crashes/op")
		})
	}
}

// BenchmarkAblationProbeTimeout sweeps the Ethernet reader's flag-probe
// budget in the black-hole scenario: too short rejects healthy but busy
// servers; too long approaches the Aloha penalty.
func BenchmarkAblationProbeTimeout(b *testing.B) {
	for _, probe := range []time.Duration{500 * time.Millisecond, 5 * time.Second, 30 * time.Second} {
		b.Run(fmt.Sprintf("probe=%v", probe), func(b *testing.B) {
			var transfers, deferrals float64
			for i := 0; i < b.N; i++ {
				rcfg := replica.DefaultReaderConfig(core.Ethernet)
				rcfg.ProbeTimeout = probe
				tl := expt.ReaderCell(int64(i+1), expt.ReaderWindow, rcfg)
				transfers += float64(tl.TotalTransfers)
				deferrals += float64(tl.TotalDeferrals)
			}
			b.ReportMetric(transfers/float64(b.N), "transfers/op")
			b.ReportMetric(deferrals/float64(b.N), "deferrals/op")
		})
	}
}

// ---------------------------------------------------------------------
// Microbenchmarks of the machinery itself.
// ---------------------------------------------------------------------

// BenchmarkBackoffNext measures the cost of one backoff step.
func BenchmarkBackoffNext(b *testing.B) {
	rt := core.NewReal(1)
	bo := core.NewBackoff(rt.Rand)
	for i := 0; i < b.N; i++ {
		if i%32 == 0 {
			bo.Reset()
		}
		_ = bo.Next()
	}
}

// BenchmarkLexer measures tokenization throughput.
func BenchmarkLexer(b *testing.B) {
	src := `try for 30 minutes
  forany server in xxx yyy zzz
    wget http://${server}/file.tar.gz ->& log
  end
end
`
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := lexer.All(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParse measures full parse throughput on the paper's nested
// example.
func BenchmarkParse(b *testing.B) {
	src := `try for 30 minutes
  try for 5 minutes
    wget http://server/file.tar.gz
  end
  try for 1 minute or 3 times
    gunzip file.tar.gz
    tar xvf file.tar
  end
end
`
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineEvents measures discrete-event scheduling throughput:
// process wakeups per second.
func BenchmarkEngineEvents(b *testing.B) {
	e := sim.New(1)
	e.MaxEvents = int64(b.N)*4 + 1024
	n := b.N
	e.Spawn("ticker", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			p.SleepFor(time.Millisecond)
		}
	})
	b.ResetTimer()
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkInterpLoop measures interpreter statement throughput on a
// counting loop with expr and a condition per iteration.
func BenchmarkInterpLoop(b *testing.B) {
	src := `n=0
while ${n} .lt. 1000
  expr ${n} + 1 -> n
end
`
	script, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	runner := proc.NewMapRunner()
	for i := 0; i < b.N; i++ {
		e := sim.New(1)
		e.Spawn("s", func(p *sim.Proc) {
			in := interp.New(interp.Config{Runner: runner, Runtime: p})
			if err := in.Run(e.Context(), script); err != nil {
				b.Errorf("run: %v", err)
			}
		})
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(1000, "stmts/op")
}

// BenchmarkTrySimulated measures a full try/backoff cycle in virtual
// time: 10 failures then success.
func BenchmarkTrySimulated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := sim.New(1)
		e.Spawn("t", func(p *sim.Proc) {
			calls := 0
			_ = core.Try(e.Context(), p, core.For(24*time.Hour), core.TryConfig{}, func(ctx context.Context) error {
				calls++
				if calls <= 10 {
					return core.ErrFailure
				}
				return nil
			})
		})
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDAGWorkload runs the Chimera-style DAG dispatcher (the
// workload §5 motivates scenario one with) against a cluster kept under
// FD pressure by a polite (Aloha) background population. The result is
// the paper's §8 observation in numbers: the Fixed dispatcher finishes
// its own DAG fastest *because* everyone else is polite — "a single
// obnoxious customer can disrupt a movie theater" — while the Ethernet
// dispatcher queues fairly behind the crowd. Watch crashes/op and
// bg-jobs/op for what each dispatcher style does to the shared system.
func BenchmarkDAGWorkload(b *testing.B) {
	for _, d := range core.Disciplines {
		b.Run(d.String(), func(b *testing.B) {
			var makespan, abandoned, crashes, bgJobs float64
			for i := 0; i < b.N; i++ {
				e := sim.New(int64(i + 1))
				cl := condor.NewCluster(e.RT(), condor.Config{FDCapacity: 2048})
				ctx, cancel := e.WithTimeout(e.Context(), 2*time.Hour)
				cl.StartHousekeeping(ctx)
				// Background load: enough Aloha clients to keep the
				// 2048-FD table saturated.
				bgCfg := condor.DefaultSubmitterConfig(core.Aloha)
				bgCfg.Threshold = 250
				for j := 0; j < 110; j++ {
					e.Spawn("bg", func(p *sim.Proc) {
						var sub condor.Submitter
						sub.Loop(p, ctx, cl, bgCfg)
					})
				}
				rng := rand.New(rand.NewSource(int64(i + 1)))
				dag := condor.LayeredDAG(rng, 3, 5, 2)
				dcfg := condor.DefaultDispatcherConfig(d)
				dcfg.Submit.Threshold = 250
				var disp condor.Dispatcher
				e.Spawn("dispatcher", func(p *sim.Proc) {
					_ = disp.Run(p, ctx, cl, dag, dcfg)
				})
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
				cancel()
				makespan += disp.Makespan.Seconds()
				abandoned += float64(disp.Abandoned)
				crashes += float64(cl.Schedd.Crashes)
				bgJobs += float64(cl.Schedd.Jobs - disp.Submitted)
			}
			b.ReportMetric(makespan/float64(b.N), "makespan-s/op")
			b.ReportMetric(abandoned/float64(b.N), "abandoned/op")
			b.ReportMetric(crashes/float64(b.N), "crashes/op")
			b.ReportMetric(bgJobs/float64(b.N), "bg-jobs/op")
		})
	}
}

// BenchmarkBaselineReservation compares the paper's §5 counter-proposal
// — NeST/SRB/SRM-style space reservation before writing — against the
// Ethernet producer on a space-constrained buffer with a realistic
// allocation round trip. Reservation eliminates ENOSPC collisions
// entirely but pays for it in allocator congestion: denials cost full
// round trips, so grants lag the space they are waiting for.
func BenchmarkBaselineReservation(b *testing.B) {
	window := 2 * time.Minute
	const producers = 25
	cfg := fsbuffer.Config{Capacity: 6 * fsbuffer.MB}
	grant := 200 * time.Millisecond

	b.Run("Reserving", func(b *testing.B) {
		var consumed, denials float64
		for i := 0; i < b.N; i++ {
			e := sim.New(int64(i + 1))
			buf := fsbuffer.New(e.RT(), cfg)
			alloc := fsbuffer.NewAllocator(e.RT(), buf, grant)
			ctx, cancel := e.WithTimeout(e.Context(), window)
			e.Spawn("consumer", func(p *sim.Proc) { buf.Consumer(p, ctx) })
			for j := 0; j < producers; j++ {
				j := j
				e.Spawn("producer", func(p *sim.Proc) {
					var rp fsbuffer.ReservingProducer
					rp.Loop(p, ctx, alloc, j, fsbuffer.DefaultProducerConfig(core.Aloha))
				})
			}
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
			cancel()
			consumed += float64(buf.Consumed)
			denials += float64(alloc.Denials)
			if buf.Collisions != 0 {
				b.Fatalf("reserving producers collided %d times", buf.Collisions)
			}
		}
		b.ReportMetric(consumed/float64(b.N), "consumed/op")
		b.ReportMetric(denials/float64(b.N), "denials/op")
	})
	b.Run("Ethernet", func(b *testing.B) {
		var consumed, collisions float64
		for i := 0; i < b.N; i++ {
			e := sim.New(int64(i + 1))
			buf := fsbuffer.New(e.RT(), cfg)
			ctx, cancel := e.WithTimeout(e.Context(), window)
			e.Spawn("consumer", func(p *sim.Proc) { buf.Consumer(p, ctx) })
			for j := 0; j < producers; j++ {
				j := j
				e.Spawn("producer", func(p *sim.Proc) {
					var pr fsbuffer.Producer
					pr.Loop(p, ctx, buf, j, fsbuffer.DefaultProducerConfig(core.Ethernet))
				})
			}
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
			cancel()
			consumed += float64(buf.Consumed)
			collisions += float64(buf.Collisions)
		}
		b.ReportMetric(consumed/float64(b.N), "consumed/op")
		b.ReportMetric(collisions/float64(b.N), "collisions/op")
	})
}

// ---------------------------------------------------------------------
// Tracer overhead (PR: discipline-level event tracing).
// ---------------------------------------------------------------------

// BenchmarkTryTraceOverhead measures core.Try's attempt loop with
// tracing disabled (nil client) against tracing enabled. "disabled"
// must match "baseline" (no trace fields at all) in both ns/op and
// allocs/op: a disabled tracer is one nil check per event site.
func BenchmarkTryTraceOverhead(b *testing.B) {
	run := func(b *testing.B, cfg core.TryConfig) {
		rt := core.NewReal(1)
		cfg.Backoff = &core.Backoff{Base: time.Millisecond, Cap: time.Millisecond, Factor: 1, RandMin: 1, RandMax: 1}
		op := func(ctx context.Context) error { return nil }
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := core.Try(context.Background(), rt, core.Times(1), cfg, op); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("baseline", func(b *testing.B) {
		run(b, core.TryConfig{NoBackoff: true})
	})
	b.Run("disabled", func(b *testing.B) {
		run(b, core.TryConfig{NoBackoff: true, Trace: nil, Span: "bench", Site: "r"})
	})
	b.Run("enabled", func(b *testing.B) {
		tr := trace.New()
		var now time.Duration
		c := tr.NewClient("bench", "t0", func() time.Duration { now += time.Microsecond; return now })
		run(b, core.TryConfig{NoBackoff: true, Trace: c, Span: "bench", Site: "r"})
	})
}

// BenchmarkTraceEmit measures one enabled event emission (lock, stamp,
// append).
func BenchmarkTraceEmit(b *testing.B) {
	tr := trace.New()
	var now time.Duration
	c := tr.NewClient("bench", "t0", func() time.Duration { now += time.Microsecond; return now })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Attempt()
	}
}

// BenchmarkSeriesAt measures the binary-search lookup timeline tables
// perform once per rendered row and series.
func BenchmarkSeriesAt(b *testing.B) {
	s := metrics.NewSeries("bench")
	const n = 10000
	for i := 0; i < n; i++ {
		s.Add(time.Duration(i)*time.Millisecond, float64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.At(time.Duration(i%n) * time.Millisecond)
	}
}

// BenchmarkFig7Traced regenerates Figure 7 with a live tracer attached,
// against BenchmarkFig7 as the untraced baseline, and reports the
// events recorded per run.
func BenchmarkFig7Traced(b *testing.B) {
	var events float64
	for i := 0; i < b.N; i++ {
		opt := expt.Options{Seed: int64(i + 1), Scale: benchScale, Trace: trace.New()}
		_ = expt.Fig7(opt)
		events += float64(opt.Trace.Len())
	}
	b.ReportMetric(events/float64(b.N), "events/op")
}
