# Development targets. `make ci` is the full gate: vet, build, race
# tests, a single-iteration benchmark smoke, and a short fuzz smoke on
# every fuzz target.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race race-core short bench-smoke fuzz-smoke diff-smoke res-smoke obs-smoke net-smoke scale-smoke gridd-smoke golden ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Fast-failing race gate on the arbitration-critical packages: the
# retry machinery (whose TryConfig templates are shared across
# concurrent clients) and the lease manager. The full `race` target
# still covers everything; this one fails in seconds.
race-core:
	$(GO) test -race ./internal/core ./internal/lease

# Run every benchmark exactly once (keeps the harnesses compiling and
# passing — including the engine hot-path and parallel-sweep benchmarks
# — without paying for real measurement in CI), then the parallel-vs-
# serial determinism cross-check under the race detector.
bench-smoke:
	$(GO) test -run NONE -bench . -benchtime 1x ./...
	$(GO) test -race -run TestParallelDeterminism ./cmd/gridbench

# A brief run of each fuzz target: catches regressions in the corpus
# and keeps the harnesses themselves compiling and passing.
fuzz-smoke:
	$(GO) test -run FuzzLex -fuzz FuzzLex -fuzztime $(FUZZTIME) ./internal/ftsh/lexer
	$(GO) test -run FuzzParse -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/ftsh/parser
	$(GO) test -run FuzzInterp -fuzz FuzzInterp -fuzztime $(FUZZTIME) ./internal/ftsh/interp
	$(GO) test -run FuzzTimerWheel -fuzz FuzzTimerWheel -fuzztime $(FUZZTIME) ./internal/sim

# Differential sim-vs-live validation: every scenario's ordering claims
# (Ethernet >= Aloha >= Fixed, carrier floor, lease no-starvation) and
# the trace grammar, asserted on both backends across three seeds. The
# live arms run wall-clock time under compression, so this target takes
# tens of seconds, not milliseconds.
diff-smoke:
	$(GO) test ./internal/expt -run TestDiff -count=1

# Reservation/admission-control gate: the interval book's property
# suite (no-overlap, conservation, FIFO — 25+ seeds with a shrinker)
# under the race detector, plus both regimes of the reservation-vs-
# Ethernet comparison and the FigRes sweep at smoke scale.
res-smoke:
	$(GO) test -race ./internal/lease -run TestBook -count=1
	$(GO) test -race ./internal/expt -run 'TestRes|TestFigRes' -count=1

# Flight-recorder gate: the nil-registry hot path must stay at zero
# allocations (the acceptance bar for instrumenting the engine at all),
# the enabled path must stay allocation-free too, and the registry must
# survive concurrent writers against a live exporter under the race
# detector. BENCH_obs.json records the measured per-op costs.
obs-smoke:
	$(GO) test -race ./internal/obs -run 'TestNilHotPathZeroAlloc|TestEnabledHotPathZeroAlloc|TestConcurrentWritesWithExposition' -count=1
	$(GO) test ./internal/obs -run NONE -bench . -benchtime 100x

# Unreliable-channel gate: the lease wire's fault semantics (drop, dup,
# delay, watchdog races — including the delayed-renew/delayed-release
# book-leak regression) under the race detector, the fenced/unfenced
# channel ablation across both presets and seeds 1-3 on both backends,
# the preset composition audit, and the FigNet golden.
net-smoke:
	$(GO) test -race ./internal/lease -run TestWire -count=1
	$(GO) test -race ./internal/chaos -run 'TestPresetPairsCompose|TestComposedSummaryDeterministic' -count=1
	$(GO) test -race ./internal/expt -run 'TestNetCell|TestNetNoDoubleAlloc|TestTypedErrorAudit' -count=1
	$(GO) test ./cmd/gridbench -run TestGoldenFigNetTable -count=1

# Million-client engine gate: the timer-wheel-vs-reference differential
# suite and the shard-invariance proof under the race detector, the
# scale figure's determinism/wheel-health smoke, and a reduced (10k
# client) scale sweep through the real CLI — including the sharded run,
# which must reproduce the identical golden byte for byte.
scale-smoke:
	$(GO) test -race ./internal/sim -run 'TestWheelDifferential|TestWheelLongHorizon|TestShardCountInvariance|TestRunQueueMaskWraparound|TestProcArenaRecycling' -count=1
	$(GO) test -race ./internal/expt -run 'TestFigScale|TestScaleWheel' -count=1
	$(GO) test -race ./cmd/gridbench -run 'TestGoldenFigScale' -count=1

# Networked-service gate: build the real daemon, then run the wire
# protocol's unit/property/shutdown suites, the socket-level
# differential harness (TestDiffGridd*: every cell spawns its own
# in-process daemon), the fenced-vs-unfenced channel-chaos ablation at
# the HTTP boundary, and the conformance golden through the CLI — all
# under the race detector.
gridd-smoke:
	$(GO) build -o /tmp/gridd-smoke-bin ./cmd/gridd
	$(GO) test -race ./internal/gridd ./internal/griddclient ./cmd/gridd -count=1
	$(GO) test -race ./internal/expt -run 'TestDiffGridd|TestGridd' -count=1
	$(GO) test -race ./cmd/gridbench -run 'TestGoldenFigGridd|TestGriddBackend' -count=1

# Rewrite the gridbench golden files after an intentional output change.
golden:
	$(GO) test ./cmd/gridbench -run TestGolden -update

ci: vet build race-core race bench-smoke fuzz-smoke diff-smoke res-smoke obs-smoke net-smoke scale-smoke gridd-smoke
